// Package addrman reimplements Bitcoin Core's address manager (addrman),
// the component the paper's §IV-B identifies as a root cause of poor
// synchronization: it stores every address learned from ADDR gossip in a
// "new" table and promotes addresses it has successfully connected to into
// a "tried" table, selecting between the two with equal probability when
// opening outbound connections. Because ADDR gossip is dominated by
// unreachable addresses (85.1% in the paper's measurements), the new table
// fills with addresses that can never be connected to, driving the 88.8%
// outbound connection failure rate the paper reports.
//
// The package also implements the two §V refinements so they can be
// evaluated: a tried-only GETADDR response mode and a configurable
// eviction horizon (the paper proposes lowering Bitcoin Core's 30 days to
// 17 days, matching the measured mean node lifetime of 16.6 days).
package addrman

import (
	"bytes"
	"math/rand"
	"net/netip"
	"sort"
	"sync"
	"time"

	"repro/internal/wire"
)

// Table geometry and policy defaults, matching Bitcoin Core.
const (
	// NewBucketCount is the number of buckets in the new table.
	NewBucketCount = 1024
	// TriedBucketCount is the number of buckets in the tried table.
	TriedBucketCount = 256
	// BucketSize is the number of slots per bucket.
	BucketSize = 64

	// DefaultHorizon is how long an address may sit in a table without a
	// successful connection before IsTerrible evicts it. Bitcoin Core uses
	// 30 days; the paper's §V proposes 17 days.
	DefaultHorizon = 30 * 24 * time.Hour

	// retriesBeforeTerrible is the number of failed attempts after which a
	// never-successful address is considered terrible.
	retriesBeforeTerrible = 3
	// maxFailures is the failed-attempt budget within minFailDays for an
	// address that has succeeded before.
	maxFailures = 10
	// minFailWindow is the window over which maxFailures applies.
	minFailWindow = 7 * 24 * time.Hour

	// getAddrMaxPct is the percentage of known addresses returned by
	// GetAddr.
	getAddrMaxPct = 23
	// getAddrMax is the hard cap on addresses returned by GetAddr.
	getAddrMax = 1000
)

// Config controls address manager policy.
type Config struct {
	// Key seeds the bucket placement hashing; two managers with the same
	// key place addresses identically.
	Key uint64
	// Horizon is the eviction age (DefaultHorizon when zero). The paper's
	// §V refinement sets this to 17 days.
	Horizon time.Duration
	// TriedOnlyGetAddr makes GetAddr sample exclusively from the tried
	// table, the paper's §V addressing-protocol refinement.
	TriedOnlyGetAddr bool
	// Now supplies the current time; defaults to time.Now. Simulations
	// inject virtual clocks here.
	Now func() time.Time
	// Rand supplies randomness; defaults to a private source seeded from
	// Key for determinism.
	Rand *rand.Rand
}

// addrInfo is the per-address bookkeeping record.
type addrInfo struct {
	addr     wire.NetAddress
	source   netip.Addr // who told us about this address
	lastTry  time.Time  // last connection attempt
	lastGood time.Time  // last successful connection
	attempts int        // failed attempts since last success
	inTried  bool
	refCount int // number of new-table slots referencing this address
	listPos  int // index in the owning key list (newList or triedList)
	// newSlots records the (bucket, slot) locations of this address's
	// new-table references, so clearing them is O(refs) instead of a
	// scan over every bucket.
	newSlots [][2]int16
}

// AddrMan is the address manager. It is safe for concurrent use.
type AddrMan struct {
	mu  sync.Mutex
	cfg Config

	info map[netip.AddrPort]*addrInfo

	// newTable[bucket][slot] and triedTable[bucket][slot] hold address
	// keys; the zero AddrPort marks an empty slot.
	newTable   [NewBucketCount][BucketSize]netip.AddrPort
	triedTable [TriedBucketCount][BucketSize]netip.AddrPort

	// newList and triedList hold the unique keys of each table for O(1)
	// uniform sampling in Select; positions are tracked in addrInfo.
	newList   []netip.AddrPort
	triedList []netip.AddrPort

	nNew   int // occupied new-table slots referencing unique addresses
	nTried int
}

// listAppend appends key to the given list, recording its position.
func (a *AddrMan) listAppend(list *[]netip.AddrPort, key netip.AddrPort, info *addrInfo) {
	info.listPos = len(*list)
	*list = append(*list, key)
}

// listRemove removes the entry at info.listPos from list via swap-remove,
// fixing up the moved element's recorded position.
func (a *AddrMan) listRemove(list *[]netip.AddrPort, info *addrInfo) {
	l := *list
	pos := info.listPos
	last := len(l) - 1
	if pos != last {
		moved := l[last]
		l[pos] = moved
		if mi := a.info[moved]; mi != nil {
			mi.listPos = pos
		}
	}
	*list = l[:last]
	info.listPos = -1
}

// New creates an address manager with the given configuration.
func New(cfg Config) *AddrMan {
	if cfg.Horizon == 0 {
		cfg.Horizon = DefaultHorizon
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Rand == nil {
		cfg.Rand = rand.New(rand.NewSource(int64(cfg.Key) ^ 0x5deece66d))
	}
	return &AddrMan{
		cfg:  cfg,
		info: make(map[netip.AddrPort]*addrInfo),
	}
}

// groupOf maps an address to its network group (a /16 for IPv4, /32 for
// IPv6), the unit Bitcoin Core uses to limit bucket concentration from a
// single network neighbourhood. The group is returned as a packed uint64.
func groupOf(a netip.Addr) uint64 {
	if a.Is4() {
		b := a.As4()
		return 4<<32 | uint64(b[0])<<8 | uint64(b[1])
	}
	b := a.As16()
	return 6<<32 | uint64(b[0])<<24 | uint64(b[1])<<16 |
		uint64(b[2])<<8 | uint64(b[3])
}

// fnvMix folds v into an FNV-1a style accumulator. Bucket placement only
// needs a well-distributed keyed hash, not a cryptographic one (Bitcoin
// Core uses SipHash here for DoS resistance; our threat model is a
// simulation).
func fnvMix(h, v uint64) uint64 {
	const prime = 1099511628211
	for i := 0; i < 8; i++ {
		h ^= (v >> (8 * i)) & 0xff
		h *= prime
	}
	return h
}

// addrKey packs an AddrPort into two uint64 mixing components.
func addrKey(addr netip.AddrPort) (uint64, uint64) {
	b := addr.Addr().As16()
	hi := uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 |
		uint64(b[3])<<32 | uint64(b[4])<<24 | uint64(b[5])<<16 |
		uint64(b[6])<<8 | uint64(b[7])
	lo := uint64(b[8])<<56 | uint64(b[9])<<48 | uint64(b[10])<<40 |
		uint64(b[11])<<32 | uint64(b[12])<<24 | uint64(b[13])<<16 |
		uint64(b[14])<<8 | uint64(b[15])
	return hi, lo ^ uint64(addr.Port())<<48
}

// newBucketFor places an address learned from source into a new-table
// bucket determined by (key, addr group, source group).
func (a *AddrMan) newBucketFor(addr netip.AddrPort, source netip.Addr) int {
	h := fnvMix(0xcbf29ce484222325^a.cfg.Key, 1)
	h = fnvMix(h, groupOf(addr.Addr()))
	h = fnvMix(h, groupOf(source))
	return int(h % NewBucketCount)
}

// triedBucketFor places an address into a tried-table bucket determined by
// (key, full address).
func (a *AddrMan) triedBucketFor(addr netip.AddrPort) int {
	hi, lo := addrKey(addr)
	h := fnvMix(0xcbf29ce484222325^a.cfg.Key, 2)
	h = fnvMix(h, hi)
	h = fnvMix(h, lo)
	return int(h % TriedBucketCount)
}

// slotFor places an address within a bucket of the given table (0 = new,
// 1 = tried).
func (a *AddrMan) slotFor(table int, bucket int, addr netip.AddrPort) int {
	hi, lo := addrKey(addr)
	h := fnvMix(0xcbf29ce484222325^a.cfg.Key, uint64(3+table))
	h = fnvMix(h, uint64(bucket))
	h = fnvMix(h, hi)
	h = fnvMix(h, lo)
	return int(h % BucketSize)
}

// Add records addresses learned from source (typically the peer that sent
// the ADDR message). It returns how many were newly added. Addresses
// already in tried are refreshed but not duplicated.
func (a *AddrMan) Add(addrs []wire.NetAddress, source netip.Addr) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	added := 0
	for i := range addrs {
		if a.addLocked(addrs[i], source) {
			added++
		}
	}
	return added
}

func (a *AddrMan) addLocked(na wire.NetAddress, source netip.Addr) bool {
	key := na.Addr
	if !key.IsValid() || key.Port() == 0 {
		return false
	}
	now := a.cfg.Now()
	info, exists := a.info[key]
	if exists {
		// Refresh the advertised timestamp, capped to now (peers routinely
		// advertise future or stale timestamps).
		if na.Timestamp.After(info.addr.Timestamp) && !na.Timestamp.After(now) {
			info.addr.Timestamp = na.Timestamp
		}
		info.addr.Services |= na.Services
		if info.inTried {
			return false
		}
		// Already in new; Bitcoin Core may add another new-table reference
		// from a different source, with decreasing probability.
		if info.refCount >= 4 || a.cfg.Rand.Intn(1<<info.refCount) != 0 {
			return false
		}
	} else {
		if na.Timestamp.After(now) {
			na.Timestamp = now
		}
		info = &addrInfo{addr: na, source: source}
		a.info[key] = info
	}

	bucket := a.newBucketFor(key, source)
	slot := a.slotFor(0, bucket, key)
	occupant := a.newTable[bucket][slot]
	if occupant == key {
		return !exists
	}
	if occupant.IsValid() {
		// Evict the occupant if it is terrible; otherwise the incumbent
		// stays and the newcomer is dropped unless it has no other slot.
		occInfo := a.info[occupant]
		if occInfo != nil && a.isTerribleLocked(occInfo, now) {
			a.removeNewRefLocked(occupant, bucket, slot)
		} else {
			if !exists {
				// Keep the map entry only if it got a slot somewhere.
				delete(a.info, key)
			}
			return false
		}
	}
	a.newTable[bucket][slot] = key
	info.refCount++
	info.newSlots = append(info.newSlots, [2]int16{int16(bucket), int16(slot)})
	if info.refCount == 1 && !info.inTried {
		a.nNew++
		a.listAppend(&a.newList, key, info)
	}
	return !exists
}

// removeNewRefLocked clears one new-table reference of addr and deletes
// the record entirely when no references remain.
func (a *AddrMan) removeNewRefLocked(addr netip.AddrPort, bucket, slot int) {
	a.newTable[bucket][slot] = netip.AddrPort{}
	info := a.info[addr]
	if info == nil {
		return
	}
	info.refCount--
	for i, bs := range info.newSlots {
		if int(bs[0]) == bucket && int(bs[1]) == slot {
			info.newSlots[i] = info.newSlots[len(info.newSlots)-1]
			info.newSlots = info.newSlots[:len(info.newSlots)-1]
			break
		}
	}
	if info.refCount <= 0 && !info.inTried {
		a.listRemove(&a.newList, info)
		delete(a.info, addr)
		a.nNew--
	}
}

// Attempt records a failed or in-progress connection attempt to addr.
func (a *AddrMan) Attempt(addr netip.AddrPort) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if info := a.info[addr]; info != nil {
		info.lastTry = a.cfg.Now()
		info.attempts++
	}
}

// Good marks addr as successfully connected, promoting it from the new
// table to the tried table (possibly evicting a colliding tried entry
// back to new, as Bitcoin Core does).
func (a *AddrMan) Good(addr netip.AddrPort) {
	a.mu.Lock()
	defer a.mu.Unlock()
	info := a.info[addr]
	if info == nil {
		// Unknown address connected directly (e.g. a manual peer): track it.
		info = &addrInfo{
			addr:   wire.NetAddress{Addr: addr, Timestamp: a.cfg.Now()},
			source: addr.Addr(),
		}
		a.info[addr] = info
		a.nNew++
		info.refCount = 1
		a.listAppend(&a.newList, addr, info)
	}
	now := a.cfg.Now()
	info.lastGood = now
	info.lastTry = now
	info.attempts = 0
	info.addr.Timestamp = now
	if info.inTried {
		return
	}
	// Clear all new-table references via their recorded locations.
	for _, bs := range info.newSlots {
		if a.newTable[bs[0]][bs[1]] == addr {
			a.newTable[bs[0]][bs[1]] = netip.AddrPort{}
		}
	}
	info.newSlots = nil
	info.refCount = 0
	a.nNew--
	a.listRemove(&a.newList, info)

	bucket := a.triedBucketFor(addr)
	slot := a.slotFor(1, bucket, addr)
	if occupant := a.triedTable[bucket][slot]; occupant.IsValid() && occupant != addr {
		// Demote the occupant back into the new table (test-before-evict
		// is approximated by unconditional demotion, Bitcoin Core's
		// pre-feeler behaviour).
		if occInfo := a.info[occupant]; occInfo != nil {
			occInfo.inTried = false
			a.nTried--
			a.listRemove(&a.triedList, occInfo)
			a.reinsertIntoNewLocked(occupant, occInfo)
		}
	}
	a.triedTable[bucket][slot] = addr
	info.inTried = true
	a.nTried++
	a.listAppend(&a.triedList, addr, info)
}

// reinsertIntoNewLocked places a demoted tried address back into the new
// table, dropping it when the target slot holds a healthy incumbent.
func (a *AddrMan) reinsertIntoNewLocked(addr netip.AddrPort, info *addrInfo) {
	bucket := a.newBucketFor(addr, info.source)
	slot := a.slotFor(0, bucket, addr)
	occupant := a.newTable[bucket][slot]
	if occupant.IsValid() && occupant != addr {
		occInfo := a.info[occupant]
		if occInfo == nil || !a.isTerribleLocked(occInfo, a.cfg.Now()) {
			delete(a.info, addr)
			return
		}
		a.removeNewRefLocked(occupant, bucket, slot)
	}
	a.newTable[bucket][slot] = addr
	info.refCount = 1
	info.newSlots = append(info.newSlots[:0], [2]int16{int16(bucket), int16(slot)})
	a.nNew++
	a.listAppend(&a.newList, addr, info)
}

// isTerribleLocked reports whether an address should be evicted, matching
// Bitcoin Core's IsTerrible with a configurable horizon.
func (a *AddrMan) isTerribleLocked(info *addrInfo, now time.Time) bool {
	if !info.lastTry.IsZero() && now.Sub(info.lastTry) < time.Minute {
		// Tried in the last minute: never consider terrible.
		return false
	}
	ts := info.addr.Timestamp
	if ts.After(now.Add(10 * time.Minute)) {
		return true // timestamp from the future
	}
	if ts.IsZero() || now.Sub(ts) > a.cfg.Horizon {
		return true // not seen within the horizon
	}
	if info.lastGood.IsZero() && info.attempts >= retriesBeforeTerrible {
		return true // never connected despite several attempts
	}
	if !info.lastGood.IsZero() && now.Sub(info.lastGood) > minFailWindow &&
		info.attempts >= maxFailures {
		return true // repeatedly failing recently
	}
	return false
}

// IsTerrible reports whether addr is currently eligible for eviction.
func (a *AddrMan) IsTerrible(addr netip.AddrPort) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	info := a.info[addr]
	if info == nil {
		return false
	}
	return a.isTerribleLocked(info, a.cfg.Now())
}

// Select picks an address to connect to. With newOnly false it chooses
// between the tried and new tables with equal probability (when both are
// non-empty), then samples within the chosen table — the selection rule
// whose consequences §IV-B measures. It returns the zero value and false
// when no address is available.
func (a *AddrMan) Select(newOnly bool) (wire.NetAddress, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.info) == 0 {
		return wire.NetAddress{}, false
	}
	useTried := !newOnly && len(a.triedList) > 0 &&
		(len(a.newList) == 0 || a.cfg.Rand.Intn(2) == 0)
	var list []netip.AddrPort
	if useTried {
		list = a.triedList
	} else {
		list = a.newList
	}
	if len(list) == 0 {
		return wire.NetAddress{}, false
	}
	key := list[a.cfg.Rand.Intn(len(list))]
	info := a.info[key]
	if info == nil {
		return wire.NetAddress{}, false
	}
	return info.addr, true
}

// GetAddr returns the GETADDR response sample: up to 23% of known
// addresses, capped at 1000. With TriedOnlyGetAddr set (§V refinement) the
// sample comes exclusively from the tried table.
func (a *AddrMan) GetAddr() []wire.NetAddress {
	a.mu.Lock()
	defer a.mu.Unlock()
	pool := make([]*addrInfo, 0, len(a.info))
	now := a.cfg.Now()
	// Iterate the key lists (deterministic order), not the map: sampling
	// below must be reproducible for a given Rand stream.
	for _, list := range [][]netip.AddrPort{a.newList, a.triedList} {
		for _, key := range list {
			info := a.info[key]
			if info == nil {
				continue
			}
			if a.cfg.TriedOnlyGetAddr && !info.inTried {
				continue
			}
			if a.isTerribleLocked(info, now) {
				continue
			}
			pool = append(pool, info)
		}
	}
	want := len(a.info) * getAddrMaxPct / 100
	if want > getAddrMax {
		want = getAddrMax
	}
	if want < 1 {
		want = 1
	}
	if want > len(pool) {
		want = len(pool)
	}
	// Partial Fisher-Yates for an unbiased sample.
	out := make([]wire.NetAddress, 0, want)
	for i := 0; i < want; i++ {
		j := i + a.cfg.Rand.Intn(len(pool)-i)
		pool[i], pool[j] = pool[j], pool[i]
		out = append(out, pool[i].addr)
	}
	return out
}

// Evict removes every address IsTerrible condemns and returns how many
// were removed. Bitcoin Core performs this lazily on collisions; exposing
// it lets the §V horizon refinement be measured directly.
func (a *AddrMan) Evict() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	now := a.cfg.Now()
	removed := 0
	// Deterministic removal order (the map iteration order would leak
	// into the key lists' layout and hence into Select's sampling).
	keys := make([]netip.AddrPort, 0, len(a.info))
	for key := range a.info {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool { return addrLess(keys[i], keys[j]) })
	for _, key := range keys {
		info := a.info[key]
		if !a.isTerribleLocked(info, now) {
			continue
		}
		if info.inTried {
			b := a.triedBucketFor(key)
			s := a.slotFor(1, b, key)
			if a.triedTable[b][s] == key {
				a.triedTable[b][s] = netip.AddrPort{}
			}
			a.nTried--
			a.listRemove(&a.triedList, info)
		} else {
			for _, bs := range info.newSlots {
				if a.newTable[bs[0]][bs[1]] == key {
					a.newTable[bs[0]][bs[1]] = netip.AddrPort{}
				}
			}
			a.nNew--
			a.listRemove(&a.newList, info)
		}
		delete(a.info, key)
		removed++
	}
	return removed
}

// addrLess orders AddrPorts by IP bytes then port.
func addrLess(x, y netip.AddrPort) bool {
	xb, yb := x.Addr().As16(), y.Addr().As16()
	if c := bytes.Compare(xb[:], yb[:]); c != 0 {
		return c < 0
	}
	return x.Port() < y.Port()
}

// Counts returns the number of unique addresses in the new and tried
// tables.
func (a *AddrMan) Counts() (numNew, numTried int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.nNew, a.nTried
}

// Size returns the total number of tracked addresses.
func (a *AddrMan) Size() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.info)
}

// InTried reports whether addr currently resides in the tried table.
func (a *AddrMan) InTried(addr netip.AddrPort) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	info := a.info[addr]
	return info != nil && info.inTried
}

// Have reports whether addr is known at all.
func (a *AddrMan) Have(addr netip.AddrPort) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.info[addr] != nil
}
