package chainhash

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestDoubleSHA256KnownVector(t *testing.T) {
	// SHA256(SHA256("hello")) =
	// 9595c9df90075148eb06860365df33584b75bff782a510c6cd4883a419833d50
	got := DoubleSHA256([]byte("hello"))
	// String() reverses, so compare against the reversed rendering.
	want := "503d8319a48348cdc610a582f7bf754b5833df65038606eb48510790dfc99595"
	if got.String() != want {
		t.Errorf("DoubleSHA256(hello) = %s, want %s", got.String(), want)
	}
}

func TestStringRoundTrip(t *testing.T) {
	h := DoubleSHA256([]byte("round trip"))
	parsed, err := NewHashFromStr(h.String())
	if err != nil {
		t.Fatal(err)
	}
	if parsed != h {
		t.Errorf("round trip mismatch: %s vs %s", parsed, h)
	}
}

func TestNewHashFromStrShort(t *testing.T) {
	h, err := NewHashFromStr("1")
	if err != nil {
		t.Fatal(err)
	}
	if h[0] != 1 {
		t.Errorf("h[0] = %d, want 1", h[0])
	}
	if !strings.HasSuffix(h.String(), "01") {
		t.Errorf("String() = %s, want ...01", h.String())
	}
}

func TestNewHashFromStrErrors(t *testing.T) {
	if _, err := NewHashFromStr(strings.Repeat("ab", 33)); err == nil {
		t.Error("overlong input: want error")
	}
	if _, err := NewHashFromStr("zz"); err == nil {
		t.Error("non-hex input: want error")
	}
}

func TestIsZero(t *testing.T) {
	var z Hash
	if !z.IsZero() {
		t.Error("zero hash should report IsZero")
	}
	h := DoubleSHA256(nil)
	if h.IsZero() {
		t.Error("hash of empty input should not be zero")
	}
}

func TestChecksumMatchesPrefix(t *testing.T) {
	data := []byte("checksum me")
	full := DoubleSHA256(data)
	sum := Checksum(data)
	for i := 0; i < 4; i++ {
		if sum[i] != full[i] {
			t.Fatalf("checksum byte %d = %x, want %x", i, sum[i], full[i])
		}
	}
}

// Property: String/NewHashFromStr round-trips for arbitrary hashes.
func TestHashStringRoundTripProperty(t *testing.T) {
	f := func(raw [HashSize]byte) bool {
		h := Hash(raw)
		back, err := NewHashFromStr(h.String())
		return err == nil && back == h
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: distinct inputs produce distinct digests (collision would be
// astonishing; this mostly guards against accidental truncation bugs).
func TestDoubleSHA256Injective(t *testing.T) {
	f := func(a, b []byte) bool {
		if string(a) == string(b) {
			return true
		}
		return DoubleSHA256(a) != DoubleSHA256(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
