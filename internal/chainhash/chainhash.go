// Package chainhash provides the 32-byte double-SHA256 hash type used
// throughout the Bitcoin protocol for block and transaction identifiers,
// along with helpers for hashing and hex rendering.
package chainhash

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// HashSize is the size in bytes of a Bitcoin hash.
const HashSize = 32

// Hash is a 32-byte array holding a double-SHA256 digest. Bitcoin renders
// hashes in reverse byte order (little-endian display), which String
// honors.
type Hash [HashSize]byte

// String returns the hash as the conventional reversed-hex string.
func (h Hash) String() string {
	var rev [HashSize]byte
	for i, b := range h {
		rev[HashSize-1-i] = b
	}
	return hex.EncodeToString(rev[:])
}

// IsZero reports whether the hash is all zeroes.
func (h Hash) IsZero() bool {
	return h == Hash{}
}

// NewHashFromStr parses a reversed-hex string (as produced by String) into
// a Hash. Short inputs are zero-padded on the most significant side, which
// matches Bitcoin Core's convenience behaviour for test vectors.
func NewHashFromStr(s string) (Hash, error) {
	var h Hash
	if len(s) > HashSize*2 {
		return h, fmt.Errorf("chainhash: hex string too long: %d chars", len(s))
	}
	if len(s)%2 != 0 {
		s = "0" + s
	}
	raw, err := hex.DecodeString(s)
	if err != nil {
		return h, fmt.Errorf("chainhash: decode %q: %w", s, err)
	}
	// Reverse into place, right-aligned.
	for i, b := range raw {
		h[len(raw)-1-i] = b
	}
	return h, nil
}

// DoubleSHA256 computes SHA256(SHA256(data)) and returns it as a Hash.
func DoubleSHA256(data []byte) Hash {
	first := sha256.Sum256(data)
	return sha256.Sum256(first[:])
}

// Checksum returns the first 4 bytes of the double-SHA256 of data, as used
// by the wire protocol message header.
func Checksum(data []byte) [4]byte {
	h := DoubleSHA256(data)
	var out [4]byte
	copy(out[:], h[:4])
	return out
}
