package node

import (
	"testing"
	"time"

	"repro/internal/wire"
)

// TestHeadOfLineBlocking verifies the §IV-C mechanism end to end: a large
// block body being serialized to one peer delays the announcements queued
// for other peers in the same message-handler loop.
func TestHeadOfLineBlocking(t *testing.T) {
	env := newFakeEnv()
	cfg := testConfig(mkAddr(10, 0, 0, 1))
	cfg.BytesPerSec = 200 << 10 // 1MB body ≈ 5.2s serialization
	var events []Event
	cfg.Sink = SinkFunc(func(ev Event) { events = append(events, ev) })
	n := New(cfg, env)
	n.Start()
	completeHandshake(t, n, env, 1, mkAddr(10, 0, 1, 1), 0)
	completeHandshake(t, n, env, 2, mkAddr(10, 0, 1, 2), 0)
	env.run(time.Second)

	blk, err := n.MineBlock(0)
	if err != nil {
		t.Fatal(err)
	}
	// Peer 1 requests the body; in the same batch a tx arrives from
	// peer 2 and must be announced to peer 1 — behind the 5.2s body.
	gd := &wire.MsgGetData{}
	gd.InvList = []wire.InvVect{{Type: wire.InvTypeBlock, Hash: blk.BlockHash()}}
	n.OnMessage(1, gd)
	tx := makeSpendTx(3)
	n.OnMessage(2, &tx)
	env.run(30 * time.Second)

	var bodyDelay, txDelay time.Duration
	for _, ev := range events {
		switch ev.Type {
		case EvBlockRelayed:
			if ev.Delay > bodyDelay {
				bodyDelay = ev.Delay
			}
		case EvTxRelayed:
			if ev.Delay > txDelay {
				txDelay = ev.Delay
			}
		}
	}
	if bodyDelay < 5*time.Second {
		t.Errorf("body relay delay = %v, want >= ~5.2s", bodyDelay)
	}
	if txDelay < 4*time.Second {
		t.Errorf("tx relay delay = %v, want several seconds (queued behind the body)", txDelay)
	}
}
