package node

import (
	"net/netip"
	"time"

	"repro/internal/chain"
	"repro/internal/chainhash"
	"repro/internal/obs"
	"repro/internal/wire"
)

// maxBlocksInFlight bounds concurrent block downloads during IBD.
const maxBlocksInFlight = 16

// handleMessage is the ProcessMessage equivalent: dispatches one inbound
// message. It runs inside the pump loop.
func (n *Node) handleMessage(p *Peer, msg wire.Message) {
	switch m := msg.(type) {
	case *wire.MsgVersion:
		n.handleVersion(p, m)
	case *wire.MsgVerAck:
		n.handleVerAck(p)
	case *wire.MsgPing:
		pong := n.getPong()
		pong.Nonce = m.Nonce
		n.queueMsg(p, pong, classControl)
	case *wire.MsgPong:
		n.handlePong(p, m)
	case *wire.MsgGetAddr:
		n.handleGetAddr(p)
	case *wire.MsgAddr:
		n.handleAddr(p, m)
	case *wire.MsgInv:
		n.handleInv(p, m)
	case *wire.MsgGetData:
		n.handleGetData(p, m)
	case *wire.MsgTx:
		n.handleTx(p, m)
	case *wire.MsgBlock:
		n.handleBlock(p, m)
	case *wire.MsgHeaders:
		n.handleHeaders(p, m)
	case *wire.MsgGetHeaders:
		n.handleGetHeaders(p, m)
	case *wire.MsgSendCmpct:
		p.wantsCmpct = m.Announce
	case *wire.MsgCmpctBlock:
		n.handleCmpctBlock(p, m)
	case *wire.MsgGetBlockTxn:
		n.handleGetBlockTxn(p, m)
	case *wire.MsgBlockTxn:
		n.handleBlockTxn(p, m)
	default:
		// Unknown or irrelevant (reject/notfound): ignore.
	}
}

// handleVersion processes the peer's VERSION message.
func (n *Node) handleVersion(p *Peer, m *wire.MsgVersion) {
	if p.versionReceived {
		return // duplicate VERSION; ignore
	}
	p.versionReceived = true
	p.startHeight = m.StartHeight
	p.userAgent = m.UserAgent
	if p.dir == Inbound {
		// Responder sends its VERSION after seeing the initiator's.
		n.queueMsg(p, n.versionMsg(), classControl)
	}
	n.queueMsg(p, &wire.MsgVerAck{}, classControl)
	n.maybeCompleteHandshake(p)
}

// handleVerAck processes the peer's VERACK.
func (n *Node) handleVerAck(p *Peer) {
	p.verackReceived = true
	n.maybeCompleteHandshake(p)
}

// maybeCompleteHandshake finishes connection setup once both VERSION and
// VERACK have arrived.
func (n *Node) maybeCompleteHandshake(p *Peer) {
	if p.handshook || !p.versionReceived || !p.verackReceived {
		return
	}
	p.handshook = true
	hsDur := n.env.Now().Sub(p.connected)
	n.met.handshakeTime.ObserveDuration(hsDur)
	if n.tracer != nil {
		n.tracer.Emit(obs.Event{
			Time: n.env.Now(), Kind: "handshake", From: n.cfg.Self.Addr,
			To: p.addr, Detail: p.dir.String(), Dur: hsDur,
		})
	}
	n.emit(Event{
		Type: EvHandshake, Time: n.env.Now(), Node: n.cfg.Self.Addr,
		Peer: p.addr, Dir: p.dir, Conn: p.id,
	})
	switch p.dir {
	case Feeler:
		// Feelers exist only to verify reachability: mark the address
		// good (moving it new → tried) and disconnect.
		n.addrman.Good(p.addr)
		n.disconnectPeer(p)
		return
	case Outbound:
		n.addrman.Good(p.addr)
		if n.pol.anchorsEnabled {
			n.noteAnchor(p.addr)
		}
		if !p.getAddrSent {
			p.getAddrSent = true
			n.queueMsg(p, &wire.MsgGetAddr{}, classAddr)
		}
		// Self-advertisement: every node gossips its own address.
		self := n.cfg.Self
		self.Timestamp = n.env.Now()
		n.queueMsg(p, &wire.MsgAddr{AddrList: []wire.NetAddress{self}}, classAddr)
	}
	if n.cfg.CompactBlocks {
		n.queueMsg(p, &wire.MsgSendCmpct{Announce: true, Version: 1}, classControl)
	}
	// Begin or continue header sync with peers that are ahead.
	if p.startHeight > n.chain.Height() {
		n.requestHeaders(p)
	} else if p.dir == Outbound && !n.syncedOnce {
		// The peer is not ahead: we are at (or past) its tip.
		n.markSynced()
	}
}

// disconnectPeer drops the connection locally and tells the environment.
// The peer is removed before env.Disconnect fires, so the OnDisconnect
// callback for this conn is a no-op and in-flight cleanup must happen
// here.
func (n *Node) disconnectPeer(p *Peer) {
	n.removePeer(p)
	n.env.Disconnect(p.id)
	n.emit(Event{
		Type: EvConnClose, Time: n.env.Now(), Node: n.cfg.Self.Addr,
		Peer: p.addr, Dir: p.dir, Conn: p.id,
	})
	n.clearInFlight(p.id)
}

// requestHeaders queues a GETHEADERS for everything after our tip.
func (n *Node) requestHeaders(p *Peer) {
	n.queueMsg(p, &wire.MsgGetHeaders{
		ProtocolVersion:    wire.ProtocolVersion,
		BlockLocatorHashes: n.chain.Locator(),
	}, classControl)
}

// handleGetAddr answers with the addrman sample (or the configured
// responder override). Bitcoin Core answers a single GETADDR per
// connection, which the crawler's Algorithm 1 works around by
// reconnecting; we keep the single-response rule.
func (n *Node) handleGetAddr(p *Peer) {
	if p.addrResponded {
		return
	}
	p.addrResponded = true
	var list []wire.NetAddress
	if n.cfg.GetAddrResponder != nil {
		list = n.cfg.GetAddrResponder()
	} else {
		self := n.cfg.Self
		self.Timestamp = n.env.Now()
		list = append([]wire.NetAddress{self}, n.addrman.GetAddr()...)
	}
	// Respect the wire cap in chunks of MaxAddrPerMsg.
	for len(list) > 0 {
		chunk := list
		if len(chunk) > wire.MaxAddrPerMsg {
			chunk = chunk[:wire.MaxAddrPerMsg]
		}
		n.queueMsg(p, &wire.MsgAddr{AddrList: chunk}, classAddr)
		list = list[len(chunk):]
	}
}

// handleAddr folds gossiped addresses into addrman. This is the exact
// ingestion point the paper's malicious flooders exploit: nothing here
// can distinguish reachable from unreachable addresses.
func (n *Node) handleAddr(p *Peer, m *wire.MsgAddr) {
	n.emit(Event{
		Type: EvAddrReceived, Time: n.env.Now(), Node: n.cfg.Self.Addr,
		Peer: p.addr, Count: len(m.AddrList),
	})
	// Measurement seam: multi-address payloads are GETADDR response
	// chunks (self-advertisements carry exactly one address), the
	// exchange shape the Grundmann estimators consume.
	if n.cfg.AddrSink != nil && len(m.AddrList) > 1 {
		n.cfg.AddrSink(p.addr, m.AddrList)
	}
	n.addrman.Add(m.AddrList, p.addr.Addr())
}

// handleInv requests announced objects we lack.
func (n *Node) handleInv(p *Peer, m *wire.MsgInv) {
	var want []wire.InvVect
	for _, iv := range m.InvList {
		p.markKnown(iv.Hash)
		switch iv.Type {
		case wire.InvTypeTx:
			if !n.mempool.Have(iv.Hash) {
				want = append(want, iv)
			}
		case wire.InvTypeBlock:
			if n.chain.HaveBlock(iv.Hash) {
				continue
			}
			if _, inFlight := n.blocksInFlight[iv.Hash]; inFlight {
				continue
			}
			n.blocksInFlight[iv.Hash] = inFlightBlock{conn: p.id, requested: n.env.Now()}
			want = append(want, iv)
		}
	}
	if len(want) > 0 {
		gd := &wire.MsgGetData{}
		gd.InvList = want
		n.queueMsg(p, gd, classControl)
	}
}

// handleGetData serves requested objects. Served bodies carry the relay
// mark: the paper's relay-delay metric runs from when this node received
// the object to when the last connection got it, and for peers without
// compact relay that is the body transfer, not the announcement.
func (n *Node) handleGetData(p *Peer, m *wire.MsgGetData) {
	var missing []wire.InvVect
	for _, iv := range m.InvList {
		switch iv.Type {
		case wire.InvTypeTx:
			if tx := n.mempool.Get(iv.Hash); tx != nil {
				n.queueRelay(p, tx, classTx, n.relayMarkFor(iv.Hash))
				continue
			}
			missing = append(missing, iv)
		case wire.InvTypeBlock:
			if blk, err := n.chain.BlockByHash(iv.Hash); err == nil {
				n.queueRelay(p, blk, classBlock, n.relayMarkFor(iv.Hash))
				continue
			}
			missing = append(missing, iv)
		}
	}
	if len(missing) > 0 {
		nf := &wire.MsgNotFound{}
		nf.InvList = missing
		n.queueMsg(p, nf, classControl)
	}
}

// relayFreshness bounds which body transfers count as relay: a peer that
// requests an object we announced does so within an INV→GETDATA round
// trip of our receipt, while a catching-up peer requests objects we have
// held for much longer (serving those is not relay in the paper's
// debug.log sense, and the time-since-receipt of old data would dominate
// the metric).
const relayFreshness = 15 * time.Second

// relayMarkFor builds relay instrumentation for an object seen recently;
// unknown or stale objects get a zero mark (no event emitted).
func (n *Node) relayMarkFor(h chainhash.Hash) outMsg {
	seen, ok := n.seenTimes[h]
	if !ok || n.env.Now().Sub(seen) > relayFreshness {
		return outMsg{}
	}
	return outMsg{relayMark: h, recvAt: seen}
}

// handleTx accepts a transaction into the mempool and relays it.
func (n *Node) handleTx(p *Peer, m *wire.MsgTx) {
	h, added := n.mempool.Add(m)
	p.markKnown(h)
	if !added {
		return
	}
	now := n.env.Now()
	n.noteSeen(h, now)
	n.traceDeliver(obs.KindDeliverTx, h, p.addr, now)
	n.emit(Event{
		Type: EvTxReceived, Time: now, Node: n.cfg.Self.Addr,
		Peer: p.addr, Hash: h,
	})
	// Stock unreachable (NATed) nodes accept third-party transactions
	// but do not forward them — they are relay dead-ends, one of the
	// §IV root causes. The unreachable-tx-relay policy (Franzoni &
	// Daza) turns forwarding on; reachable nodes always forward.
	if n.cfg.Reachable || n.pol.fwdTxUnreachable {
		n.announceTx(h, p.id, now)
	}
}

// SubmitTx injects a locally-generated transaction (the simulation's
// wallet equivalent) and relays it to all peers.
func (n *Node) SubmitTx(tx *wire.MsgTx) chainhash.Hash {
	h, added := n.mempool.Add(tx)
	if !added {
		return h
	}
	now := n.env.Now()
	n.noteSeen(h, now)
	n.traceDeliver(obs.KindDeliverTx, h, netip.AddrPort{}, now)
	n.emit(Event{
		Type: EvTxReceived, Time: now, Node: n.cfg.Self.Addr, Hash: h,
	})
	n.announceTx(h, 0, now)
	return h
}

// announceTx queues a transaction INV to every handshook peer that does
// not already know it.
func (n *Node) announceTx(h chainhash.Hash, except ConnID, recvAt time.Time) {
	for _, p := range n.slots {
		if p == nil || !p.handshook || p.id == except || p.knows(h) {
			continue
		}
		p.markKnown(h)
		inv := n.getInv()
		inv.InvList = append(inv.InvList, wire.InvVect{Type: wire.InvTypeTx, Hash: h})
		n.queueRelay(p, inv, classTx, outMsg{relayMark: h, recvAt: recvAt})
	}
}

// handleBlock processes a full block body.
func (n *Node) handleBlock(p *Peer, m *wire.MsgBlock) {
	h := m.BlockHash()
	p.markKnown(h)
	if f, ok := n.blocksInFlight[h]; ok {
		dlDur := n.env.Now().Sub(f.requested)
		n.met.blockDownload.ObserveDuration(dlDur)
		if n.tracer != nil {
			n.tracer.Emit(obs.Event{
				Time: n.env.Now(), Kind: "block-download", From: p.addr,
				To: n.cfg.Self.Addr, Detail: h.String()[:16], Dur: dlDur,
			})
		}
	}
	delete(n.blocksInFlight, h)
	n.acceptAndRelayBlock(p, m)
	n.continueSync(p)
}

// acceptAndRelayBlock validates, stores, announces, and accounts a newly
// received block. Returns true when the block extended the chain.
func (n *Node) acceptAndRelayBlock(p *Peer, m *wire.MsgBlock) bool {
	h := m.BlockHash()
	if n.chain.HaveBlock(h) {
		return false
	}
	if _, err := n.chain.Accept(m); err != nil {
		// Orphan or invalid. For orphans, resync headers from this peer;
		// the block will be re-requested in order.
		if p != nil && !n.chain.HaveBlock(m.Header.PrevBlock) {
			n.requestHeaders(p)
		}
		return false
	}
	now := n.env.Now()
	n.noteSeen(h, now)
	n.mempool.RemoveBlockTxs(m)
	var peerAddr netip.AddrPort
	if p != nil {
		peerAddr = p.addr
	}
	n.traceDeliver(obs.KindDeliverBlock, h, peerAddr, now)
	n.emit(Event{
		Type: EvBlockReceived, Time: now, Node: n.cfg.Self.Addr,
		Peer: peerAddr, Hash: h,
	})
	except := ConnID(0)
	if p != nil {
		except = p.id
	}
	n.announceBlock(m, except, now)
	return true
}

// announceBlock queues a block announcement (compact block or INV) to
// every handshook peer that does not know the block yet.
func (n *Node) announceBlock(blk *wire.MsgBlock, except ConnID, recvAt time.Time) {
	h := blk.BlockHash()
	var cmpct *wire.MsgCmpctBlock
	announce := func(p *Peer) {
		if p == nil || !p.handshook || p.id == except || p.knows(h) {
			return
		}
		p.markKnown(h)
		mark := outMsg{relayMark: h, recvAt: recvAt}
		if n.cfg.CompactBlocks && p.wantsCmpct {
			if cmpct == nil {
				cmpct = chain.BuildCompactBlock(blk, n.env.Rand().Uint64())
			}
			n.queueRelay(p, cmpct, classBlock, mark)
			return
		}
		inv := n.getInv()
		inv.InvList = append(inv.InvList, wire.InvVect{Type: wire.InvTypeBlock, Hash: h})
		n.queueRelay(p, inv, classBlock, mark)
	}
	// PriorityOutbound announces to outbound connections first (the §V
	// refinement); the stock policies use arrival order.
	if n.pol.relay != PriorityOutbound {
		for _, p := range n.slots {
			announce(p)
		}
		return
	}
	for _, p := range n.slots {
		if p != nil && p.dir != Inbound {
			announce(p)
		}
	}
	for _, p := range n.slots {
		if p != nil && p.dir == Inbound {
			announce(p)
		}
	}
}

// handleHeaders learns about blocks ahead of our tip and requests their
// bodies in order.
func (n *Node) handleHeaders(p *Peer, m *wire.MsgHeaders) {
	requested := 0
	for i := range m.Headers {
		h := m.Headers[i].BlockHash()
		if n.chain.HaveBlock(h) {
			continue
		}
		if _, inFlight := n.blocksInFlight[h]; inFlight {
			continue
		}
		if len(n.blocksInFlight) >= maxBlocksInFlight {
			break
		}
		n.blocksInFlight[h] = inFlightBlock{conn: p.id, requested: n.env.Now()}
		gd := &wire.MsgGetData{}
		gd.InvList = []wire.InvVect{{Type: wire.InvTypeBlock, Hash: h}}
		n.queueMsg(p, gd, classControl)
		requested++
	}
	if requested == 0 && len(m.Headers) == 0 && len(n.blocksInFlight) == 0 {
		// The peer has nothing newer: header sync is complete.
		n.markSynced()
	}
}

// continueSync keeps IBD moving: when in-flight block downloads drain and
// the peer may still be ahead, ask for more headers.
func (n *Node) continueSync(p *Peer) {
	if len(n.blocksInFlight) != 0 {
		return
	}
	if p != nil && p.startHeight > n.chain.Height() {
		n.requestHeaders(p)
		return
	}
	n.markSynced()
}

// markSynced records IBD completion (once).
func (n *Node) markSynced() {
	if n.syncedOnce {
		return
	}
	n.syncedOnce = true
	n.emit(Event{
		Type: EvSyncDone, Time: n.env.Now(), Node: n.cfg.Self.Addr,
	})
}

// handleGetHeaders serves headers following the peer's locator.
func (n *Node) handleGetHeaders(p *Peer, m *wire.MsgGetHeaders) {
	hdrs := n.chain.HeadersAfter(m.BlockLocatorHashes, 2000)
	n.queueMsg(p, &wire.MsgHeaders{Headers: hdrs}, classControl)
}

// handleCmpctBlock attempts BIP-152 reconstruction; missing transactions
// trigger a GETBLOCKTXN round trip, coupling block relay latency to
// transaction relay latency exactly as §IV-C describes.
func (n *Node) handleCmpctBlock(p *Peer, m *wire.MsgCmpctBlock) {
	h := m.BlockHash()
	p.markKnown(h)
	if n.chain.HaveBlock(h) {
		return
	}
	if !n.chain.HaveBlock(m.Header.PrevBlock) {
		// Can't connect it yet; fall back to header sync.
		n.requestHeaders(p)
		return
	}
	res, err := chain.ReconstructCompactBlock(m, n.mempool)
	if err != nil {
		// Short-ID collision: fall back to a full block request.
		n.blocksInFlight[h] = inFlightBlock{conn: p.id, requested: n.env.Now()}
		gd := &wire.MsgGetData{}
		gd.InvList = []wire.InvVect{{Type: wire.InvTypeBlock, Hash: h}}
		n.queueMsg(p, gd, classControl)
		return
	}
	if res.Complete {
		n.acceptAndRelayBlock(p, res.Block)
		return
	}
	n.pendingCmpct[h] = &pendingCompact{cb: m, partial: res, from: p.id}
	n.queueMsg(p, &wire.MsgGetBlockTxn{
		BlockHash: h,
		Indexes:   res.MissingIndexes,
	}, classBlock)
}

// handleGetBlockTxn serves the transactions a peer is missing from a
// compact block we relayed.
func (n *Node) handleGetBlockTxn(p *Peer, m *wire.MsgGetBlockTxn) {
	blk, err := n.chain.BlockByHash(m.BlockHash)
	if err != nil {
		nf := &wire.MsgNotFound{}
		nf.InvList = []wire.InvVect{{Type: wire.InvTypeBlock, Hash: m.BlockHash}}
		n.queueMsg(p, nf, classControl)
		return
	}
	resp, err := chain.BlockTxnFor(blk, m)
	if err != nil {
		return
	}
	n.queueMsg(p, resp, classBlock)
}

// handleBlockTxn completes a pending compact-block reconstruction.
func (n *Node) handleBlockTxn(p *Peer, m *wire.MsgBlockTxn) {
	pend, ok := n.pendingCmpct[m.BlockHash]
	if !ok {
		return
	}
	delete(n.pendingCmpct, m.BlockHash)
	blk, err := chain.CompleteReconstruction(pend.cb, pend.partial, n.mempool, m)
	if err != nil {
		// Reconstruction failed: request the full block.
		n.blocksInFlight[m.BlockHash] = inFlightBlock{conn: p.id, requested: n.env.Now()}
		gd := &wire.MsgGetData{}
		gd.InvList = []wire.InvVect{{Type: wire.InvTypeBlock, Hash: m.BlockHash}}
		n.queueMsg(p, gd, classControl)
		return
	}
	n.acceptAndRelayBlock(p, blk)
}

// MineBlock produces a block on top of the current tip containing up to
// maxTxs mempool transactions, accepts it locally, and announces it. The
// simulation harness invokes this on the scheduled miner.
func (n *Node) MineBlock(maxTxs int) (*wire.MsgBlock, error) {
	tip, height := n.chain.Tip()
	coinbase := wire.MsgTx{
		Version: 2,
		TxIn: []wire.TxIn{{
			PreviousOutPoint: wire.OutPoint{Index: 0xffffffff},
			SignatureScript: []byte{
				byte(height + 1), byte((height + 1) >> 8),
				byte((height + 1) >> 16), byte((height + 1) >> 24),
			},
			Sequence: 0xffffffff,
		}},
		TxOut: []wire.TxOut{{Value: 6_2500_0000, PkScript: []byte{0x51}}},
	}
	blk := &wire.MsgBlock{
		Header: wire.BlockHeader{
			Version:   4,
			PrevBlock: tip,
			Timestamp: uint32(n.env.Now().Unix()),
			Bits:      0x207fffff,
			Nonce:     n.env.Rand().Uint32(),
		},
		Transactions: []wire.MsgTx{coinbase},
	}
	for _, h := range n.mempool.Hashes() {
		if maxTxs > 0 && len(blk.Transactions) > maxTxs {
			break
		}
		if tx := n.mempool.Get(h); tx != nil {
			blk.Transactions = append(blk.Transactions, *tx)
		}
	}
	blk.Header.MerkleRoot = chain.BlockMerkleRoot(blk)
	if _, err := n.chain.Accept(blk); err != nil {
		return nil, err
	}
	n.mempool.RemoveBlockTxs(blk)
	now := n.env.Now()
	n.noteSeen(blk.BlockHash(), now)
	n.traceDeliver(obs.KindDeliverBlock, blk.BlockHash(), netip.AddrPort{}, now)
	n.emit(Event{
		Type: EvBlockMined, Time: now, Node: n.cfg.Self.Addr,
		Hash: blk.BlockHash(),
	})
	n.announceBlock(blk, 0, now)
	return blk, nil
}
