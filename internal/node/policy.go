package node

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/addrman"
)

// This file is the intervention-policy API: the paper's §V protocol
// refinements (and the related-work remedies the ROADMAP names) as
// first-class, composable values instead of scattered Config booleans.
//
// A Policy is a named behaviour change. The node does NOT consult
// policies on its hot paths: New compiles Config.Policies once into the
// plain fields the hot paths already read (n.relay, n.fwdTxUnreachable,
// n.anchorsEnabled, the addrman.Config), so an empty policy set costs
// exactly what the pre-policy node cost — the same nil-cost bar as the
// crawler's Observer seam, guarded by BenchmarkPolicyDispatch.
//
// Hook points (each an optional interface a Policy may implement):
//
//   - AddrManPolicy rewrites the addrman configuration at node
//     construction (GETADDR response sampling, admission/eviction
//     horizon — the tried-only-addr and horizon-<N>d policies);
//   - RelaySchedPolicy selects the message scheduling policy
//     (priority-relay, ideal-broadcast);
//   - TxForwardPolicy lets an unreachable node forward third-party
//     transactions (unreachable-tx-relay, after Franzoni & Daza,
//     arXiv:2010.15070);
//   - PeeringPolicy enables anchor-based reconnection to recently-good
//     outbound peers (churn-resilient-peering, after Younis et al.,
//     arXiv:1803.06559).
//
// Composition order: Config.Policies applies in slice order. AddrMan
// rewrites chain (each sees the previous result); for the scalar hooks
// the last policy implementing the interface wins. The canonical named
// policies are pairwise commutative — they touch disjoint knobs — so
// every encoding of the same set behaves identically; the order still
// matters for the *encoding* (PolicySet.String joins in slice order),
// which is why cache keys and CSV headers use the canonical spelling.

// Policy is one named intervention. Implementations also implement one
// or more of the hook interfaces below; a Policy implementing none is
// legal and inert.
type Policy interface {
	// Name returns the stable registry name ("tried-only-addr",
	// "horizon-17d", …) used by PolicySet.String, ParsePolicySet, CSV
	// headers, and reprod cache keys.
	Name() string
}

// AddrManPolicy rewrites the address-manager configuration once at node
// construction.
type AddrManPolicy interface {
	Policy
	// ConfigureAddrMan returns the (possibly modified) configuration.
	ConfigureAddrMan(cfg addrman.Config) addrman.Config
}

// RelaySchedPolicy overrides the message scheduling policy.
type RelaySchedPolicy interface {
	Policy
	// RelayScheduling returns the RelayPolicy the node should run.
	RelayScheduling() RelayPolicy
}

// TxForwardPolicy controls third-party transaction forwarding on
// unreachable nodes. Stock Bitcoin Core unreachable (NATed) nodes
// accept transactions but their small inbound-free connectivity makes
// them relay dead-ends; this hook models the Franzoni–Daza remedy.
type TxForwardPolicy interface {
	Policy
	// ForwardTxWhenUnreachable reports whether an unreachable node
	// forwards third-party transactions to its other peers.
	ForwardTxWhenUnreachable() bool
}

// PeeringPolicy controls churn-resilient anchor peering: the node
// remembers recently-successful outbound peers and retries them first
// when slots free up, instead of re-gambling on the 85%-dead gossip
// mix.
type PeeringPolicy interface {
	Policy
	// AnchorPeers reports whether anchor-based redialing is enabled.
	AnchorPeers() bool
}

// maxAnchors bounds the anchor list (§ Younis-style resilience): big
// enough to cover every outbound slot, small enough that a stale list
// drains quickly (failed anchors are dropped on dial failure).
const maxAnchors = 2 * DefaultMaxOutbound

// triedOnlyAddrPolicy: GETADDR responses sample only the tried table
// (§V refinement 1 — stops the node from amplifying unverified gossip).
type triedOnlyAddrPolicy struct{}

func (triedOnlyAddrPolicy) Name() string { return "tried-only-addr" }
func (triedOnlyAddrPolicy) ConfigureAddrMan(cfg addrman.Config) addrman.Config {
	cfg.TriedOnlyGetAddr = true
	return cfg
}

// horizonPolicy: tried-table entries expire after Days days (§V
// refinement 2; the paper proposes 17 days, matching the measured
// churn persistence).
type horizonPolicy struct{ Days int }

func (p horizonPolicy) Name() string { return fmt.Sprintf("horizon-%dd", p.Days) }
func (p horizonPolicy) ConfigureAddrMan(cfg addrman.Config) addrman.Config {
	cfg.Horizon = time.Duration(p.Days) * 24 * time.Hour
	return cfg
}

// priorityRelayPolicy: blocks jump the send queue and outbound
// connections are serviced first (§V refinement 3).
type priorityRelayPolicy struct{}

func (priorityRelayPolicy) Name() string                { return "priority-relay" }
func (priorityRelayPolicy) RelayScheduling() RelayPolicy { return PriorityOutbound }

// idealBroadcastPolicy: the theoretical lock-step broadcast (the
// ablation ladder's upper bound, not a deployable fix).
type idealBroadcastPolicy struct{}

func (idealBroadcastPolicy) Name() string                { return "ideal-broadcast" }
func (idealBroadcastPolicy) RelayScheduling() RelayPolicy { return Broadcast }

// unreachableTxRelayPolicy: unreachable nodes forward third-party
// transactions (Franzoni & Daza, arXiv:2010.15070).
type unreachableTxRelayPolicy struct{}

func (unreachableTxRelayPolicy) Name() string                   { return "unreachable-tx-relay" }
func (unreachableTxRelayPolicy) ForwardTxWhenUnreachable() bool { return true }

// churnResilientPeeringPolicy: anchor reconnection (Younis et al.,
// arXiv:1803.06559).
type churnResilientPeeringPolicy struct{}

func (churnResilientPeeringPolicy) Name() string      { return "churn-resilient-peering" }
func (churnResilientPeeringPolicy) AnchorPeers() bool { return true }

// builtinPolicies is the fixed-parameter registry. horizon-<N>d is
// parameterized and handled by PolicyByName directly.
var builtinPolicies = map[string]Policy{
	"tried-only-addr":         triedOnlyAddrPolicy{},
	"priority-relay":          priorityRelayPolicy{},
	"ideal-broadcast":         idealBroadcastPolicy{},
	"unreachable-tx-relay":    unreachableTxRelayPolicy{},
	"churn-resilient-peering": churnResilientPeeringPolicy{},
}

// PolicyNames lists every registered policy name (sorted), with the
// parameterized horizon family shown at its canonical §V parameter.
func PolicyNames() []string {
	out := make([]string, 0, len(builtinPolicies)+1)
	for name := range builtinPolicies {
		out = append(out, name)
	}
	out = append(out, "horizon-17d")
	sort.Strings(out)
	return out
}

// PolicyByName resolves one policy name. The horizon family parses as
// "horizon-<N>d" for any positive day count N (canonical: 17).
func PolicyByName(name string) (Policy, error) {
	if p, ok := builtinPolicies[name]; ok {
		return p, nil
	}
	if rest, ok := strings.CutPrefix(name, "horizon-"); ok {
		if days, ok := strings.CutSuffix(rest, "d"); ok {
			n, err := strconv.Atoi(days)
			// Reject non-canonical spellings ("07", "+7") so that
			// encode→parse→encode is the identity.
			if err == nil && n > 0 && strconv.Itoa(n) == days {
				return horizonPolicy{Days: n}, nil
			}
		}
	}
	return nil, fmt.Errorf("node: unknown policy %q (known: %s)",
		name, strings.Join(PolicyNames(), ", "))
}

// PolicySet is an ordered, composable set of interventions. The zero
// (empty) set is stock Bitcoin Core behaviour.
type PolicySet []Policy

// StockPolicyName is the canonical encoding of the empty PolicySet,
// used anywhere a policy column or flag needs a non-empty spelling.
const StockPolicyName = "stock"

// String renders the stable encoding: "stock" for the empty set,
// otherwise the policy names joined with "+" in set order. The encoding
// round-trips through ParsePolicySet and is what CSV headers, CLI
// flags, and reprod cache keys carry.
func (s PolicySet) String() string {
	if len(s) == 0 {
		return StockPolicyName
	}
	names := make([]string, len(s))
	for i, p := range s {
		names[i] = p.Name()
	}
	return strings.Join(names, "+")
}

// ParsePolicySet parses the String encoding: "stock" (the empty set) or
// "+"-joined policy names. Duplicate names are rejected — the canonical
// policies are idempotent, so a duplicate is always a caller mistake,
// and rejecting it keeps the encoding bijective.
func ParsePolicySet(s string) (PolicySet, error) {
	if s == "" {
		return nil, fmt.Errorf("node: empty policy set (use %q for stock behaviour)", StockPolicyName)
	}
	if s == StockPolicyName {
		return PolicySet{}, nil
	}
	parts := strings.Split(s, "+")
	out := make(PolicySet, 0, len(parts))
	seen := make(map[string]bool, len(parts))
	for _, part := range parts {
		p, err := PolicyByName(part)
		if err != nil {
			return nil, err
		}
		if seen[p.Name()] {
			return nil, fmt.Errorf("node: duplicate policy %q in set %q", p.Name(), s)
		}
		seen[p.Name()] = true
		out = append(out, p)
	}
	return out, nil
}

// MustPolicySet is ParsePolicySet for registry literals; it panics on
// error and is meant for compile-time-constant set strings.
func MustPolicySet(s string) PolicySet {
	set, err := ParsePolicySet(s)
	if err != nil {
		panic(err)
	}
	return set
}

// ParseRelayPolicy parses a RelayPolicy name. It accepts every
// RelayPolicy.String() output plus the historical btcsim alias
// "priority" for priority-outbound.
func ParseRelayPolicy(s string) (RelayPolicy, error) {
	switch s {
	case "round-robin":
		return RoundRobin, nil
	case "broadcast":
		return Broadcast, nil
	case "priority-outbound", "priority":
		return PriorityOutbound, nil
	default:
		return 0, fmt.Errorf("node: unknown relay policy %q (round-robin | broadcast | priority-outbound)", s)
	}
}

// compiledPolicies is the zero-cost dispatch form of a PolicySet: the
// scalar decisions the hot paths read as plain fields. resolvePolicies
// computes it once in New.
type compiledPolicies struct {
	// relay is the effective scheduling policy (Config.RelayPolicy
	// unless a RelaySchedPolicy overrides it).
	relay RelayPolicy
	// fwdTxUnreachable forwards third-party transactions on
	// unreachable nodes.
	fwdTxUnreachable bool
	// anchorsEnabled turns on anchor-based redialing.
	anchorsEnabled bool
}

// resolvePolicies folds cfg.Policies over the legacy Config knobs:
// the legacy fields form the baseline, policies apply on top in slice
// order (last writer wins per hook), and the addrman configuration is
// rewritten through every AddrManPolicy in turn.
func resolvePolicies(cfg Config, am addrman.Config) (compiledPolicies, addrman.Config) {
	c := compiledPolicies{relay: cfg.RelayPolicy}
	for _, pol := range cfg.Policies {
		if ap, ok := pol.(AddrManPolicy); ok {
			am = ap.ConfigureAddrMan(am)
		}
		if rp, ok := pol.(RelaySchedPolicy); ok {
			c.relay = rp.RelayScheduling()
		}
		if tp, ok := pol.(TxForwardPolicy); ok {
			c.fwdTxUnreachable = tp.ForwardTxWhenUnreachable()
		}
		if pp, ok := pol.(PeeringPolicy); ok {
			c.anchorsEnabled = pp.AnchorPeers()
		}
	}
	return c, am
}
