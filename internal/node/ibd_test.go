package node

import (
	"testing"
	"time"

	"repro/internal/chain"
	"repro/internal/wire"
)

// Direct unit tests for the initial-block-download flow and the
// supporting accessors, driven through the fake environment.

// buildDonorChain mines `blocks` on an isolated node and returns it.
func buildDonorChain(t *testing.T, blocks int) *Node {
	t.Helper()
	env := newFakeEnv()
	donor := New(testConfig(mkAddr(10, 0, 0, 9)), env)
	donor.Start()
	for i := 0; i < blocks; i++ {
		if _, err := donor.MineBlock(0); err != nil {
			t.Fatal(err)
		}
	}
	return donor
}

func TestIBDThroughHeadersAndGetData(t *testing.T) {
	donor := buildDonorChain(t, 5)
	env := newFakeEnv()
	n := New(testConfig(mkAddr(10, 0, 0, 1)), env)
	n.Start()

	var syncDone bool
	n.cfg.Sink = SinkFunc(func(ev Event) {
		if ev.Type == EvSyncDone {
			syncDone = true
		}
	})

	// Handshake with a peer that claims height 5.
	completeHandshake(t, n, env, 1, mkAddr(10, 0, 0, 2), 5)

	// The node must have asked for headers.
	var gh *wire.MsgGetHeaders
	for _, m := range env.transmitsTo(1) {
		if g, ok := m.(*wire.MsgGetHeaders); ok {
			gh = g
		}
	}
	if gh == nil {
		t.Fatal("no GETHEADERS after handshaking with a taller peer")
	}

	// Serve headers from the donor chain and then the bodies, simulating
	// the remote peer.
	hdrs := donor.Chain().HeadersAfter(gh.BlockLocatorHashes, 2000)
	if len(hdrs) != 5 {
		t.Fatalf("donor offered %d headers, want 5", len(hdrs))
	}
	n.OnMessage(1, &wire.MsgHeaders{Headers: hdrs})
	env.run(time.Second)

	// The node must have requested block bodies.
	requested := map[string]bool{}
	for _, m := range env.transmitsTo(1) {
		if gd, ok := m.(*wire.MsgGetData); ok {
			for _, iv := range gd.InvList {
				if iv.Type == wire.InvTypeBlock {
					requested[iv.Hash.String()] = true
				}
			}
		}
	}
	if len(requested) != 5 {
		t.Fatalf("requested %d blocks, want 5", len(requested))
	}
	// Deliver them in height order.
	for h := int32(1); h <= 5; h++ {
		blk, err := donor.Chain().BlockByHeight(h)
		if err != nil {
			t.Fatal(err)
		}
		n.OnMessage(1, blk)
	}
	// One more header round returns empty, completing IBD.
	env.run(time.Second)
	n.OnMessage(1, &wire.MsgHeaders{})
	env.run(time.Second)

	if got := n.Chain().Height(); got != 5 {
		t.Fatalf("height = %d, want 5", got)
	}
	if !syncDone {
		t.Error("EvSyncDone not emitted")
	}
	if !n.IsSynced() {
		t.Error("IsSynced = false after IBD")
	}
}

func TestHandleBlockUnsolicited(t *testing.T) {
	donor := buildDonorChain(t, 1)
	env := newFakeEnv()
	n := New(testConfig(mkAddr(10, 0, 0, 1)), env)
	n.Start()
	completeHandshake(t, n, env, 1, mkAddr(10, 0, 0, 2), 0)
	blk, err := donor.Chain().BlockByHeight(1)
	if err != nil {
		t.Fatal(err)
	}
	n.OnMessage(1, blk)
	env.run(time.Second)
	if n.Chain().Height() != 1 {
		t.Error("unsolicited valid block not accepted")
	}
	// A second delivery is a no-op.
	n.OnMessage(1, blk)
	env.run(time.Second)
	if n.Chain().Height() != 1 {
		t.Error("duplicate block changed the chain")
	}
}

func TestOrphanBlockTriggersHeaderSync(t *testing.T) {
	donor := buildDonorChain(t, 3)
	env := newFakeEnv()
	n := New(testConfig(mkAddr(10, 0, 0, 1)), env)
	n.Start()
	completeHandshake(t, n, env, 1, mkAddr(10, 0, 0, 2), 0)
	before := countGetHeaders(env, 1)
	// Deliver block at height 3 whose parent (height 2) is unknown.
	blk, err := donor.Chain().BlockByHeight(3)
	if err != nil {
		t.Fatal(err)
	}
	n.OnMessage(1, blk)
	env.run(time.Second)
	if n.Chain().Height() != 0 {
		t.Error("orphan extended the chain")
	}
	if countGetHeaders(env, 1) <= before {
		t.Error("orphan did not trigger a header sync")
	}
}

func countGetHeaders(env *fakeEnv, conn ConnID) int {
	c := 0
	for _, m := range env.transmitsTo(conn) {
		if _, ok := m.(*wire.MsgGetHeaders); ok {
			c++
		}
	}
	return c
}

func TestSubmitTxDuplicate(t *testing.T) {
	env := newFakeEnv()
	n := New(testConfig(mkAddr(10, 0, 0, 1)), env)
	n.Start()
	tx := makeSpendTx(41)
	h1 := n.SubmitTx(&tx)
	h2 := n.SubmitTx(&tx) // duplicate: no second announcement
	if h1 != h2 {
		t.Error("hashes differ for the same tx")
	}
	if n.Mempool().Size() != 1 {
		t.Errorf("mempool size = %d, want 1", n.Mempool().Size())
	}
}

func TestHandleGetBlockTxnUnknownBlock(t *testing.T) {
	env := newFakeEnv()
	n := New(testConfig(mkAddr(10, 0, 0, 1)), env)
	n.Start()
	completeHandshake(t, n, env, 1, mkAddr(10, 0, 0, 2), 0)
	req := &wire.MsgGetBlockTxn{
		BlockHash: chain.GenesisBlock("elsewhere").BlockHash(),
		Indexes:   []uint16{0},
	}
	n.OnMessage(1, req)
	env.run(time.Second)
	var nf *wire.MsgNotFound
	for _, m := range env.transmitsTo(1) {
		if m2, ok := m.(*wire.MsgNotFound); ok {
			nf = m2
		}
	}
	if nf == nil {
		t.Error("GETBLOCKTXN for an unknown block not answered with NOTFOUND")
	}
}

func TestAccessors(t *testing.T) {
	env := newFakeEnv()
	self := mkAddr(10, 0, 0, 1)
	n := New(testConfig(self), env)
	n.Start()
	if n.Self() != self {
		t.Error("Self mismatch")
	}
	completeHandshake(t, n, env, 1, mkAddr(10, 0, 0, 2), 0)
	p := n.peerByConn(1)
	if p.Addr() != mkAddr(10, 0, 0, 2) || p.Dir() != Inbound || !p.Handshook() {
		t.Error("peer accessors inconsistent")
	}
	for _, d := range []Direction{Outbound, Inbound, Feeler, Direction(0)} {
		if d.String() == "" {
			t.Error("empty direction string")
		}
	}
	for _, rp := range []RelayPolicy{RoundRobin, Broadcast, PriorityOutbound, RelayPolicy(0)} {
		if rp.String() == "" {
			t.Error("empty relay policy string")
		}
	}
	for ev := EvStarted; ev <= EvSyncDone+1; ev++ {
		if ev.String() == "" {
			t.Error("empty event type string")
		}
	}
}

func TestMultiSink(t *testing.T) {
	var a, b int
	sink := MultiSink{
		SinkFunc(func(Event) { a++ }),
		SinkFunc(func(Event) { b++ }),
	}
	sink.OnEvent(Event{Type: EvStarted})
	if a != 1 || b != 1 {
		t.Errorf("fan-out = %d/%d, want 1/1", a, b)
	}
}
