package node

import (
	"testing"
	"time"

	"repro/internal/wire"
)

// BenchmarkPumpThroughput measures the round-robin message pump: inbound
// pings answered with pongs across 20 peers.
func BenchmarkPumpThroughput(b *testing.B) {
	env := newFakeEnv()
	n := New(testConfig(mkAddr(10, 0, 0, 1)), env)
	n.Start()
	for i := 0; i < 20; i++ {
		conn := ConnID(i + 1)
		peer := mkAddr(10, 0, 1, byte(i+1))
		if !n.OnInbound(peer, conn) {
			b.Fatal("inbound refused")
		}
		n.OnMessage(conn, &wire.MsgVersion{Timestamp: env.Now()})
		n.OnMessage(conn, &wire.MsgVerAck{})
	}
	env.run(time.Second)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.OnMessage(ConnID(i%20+1), &wire.MsgPing{Nonce: uint64(i)})
		env.run(10 * time.Millisecond)
	}
}

// BenchmarkHandleAddr measures ADDR ingestion into addrman.
func BenchmarkHandleAddr(b *testing.B) {
	env := newFakeEnv()
	n := New(testConfig(mkAddr(10, 0, 0, 1)), env)
	n.Start()
	if !n.OnInbound(mkAddr(10, 0, 0, 2), 1) {
		b.Fatal("inbound refused")
	}
	n.OnMessage(1, &wire.MsgVersion{Timestamp: env.Now()})
	n.OnMessage(1, &wire.MsgVerAck{})
	env.run(time.Second)
	batch := make([]wire.NetAddress, 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range batch {
			v := i*100 + j
			batch[j] = wire.NetAddress{
				Addr:      mkAddr(byte(v>>16)+1, byte(v>>8), byte(v), 1),
				Timestamp: env.Now(),
			}
		}
		n.OnMessage(1, &wire.MsgAddr{AddrList: batch})
		env.run(10 * time.Millisecond)
	}
}
