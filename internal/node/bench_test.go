package node

import (
	"testing"
	"time"

	"repro/internal/wire"
)

// BenchmarkPumpThroughput measures the round-robin message pump: inbound
// pings answered with pongs across 20 peers. The env discards transmits
// at Transmit time and feeds the node's free lists (the RecycleOutbound
// contract), and the inbound ping is reused with a mutated nonce, so the
// steady-state pump must run allocation-free — CI enforces 0 allocs/op.
func BenchmarkPumpThroughput(b *testing.B) {
	env := newFakeEnv()
	n := New(testConfig(mkAddr(10, 0, 0, 1)), env)
	n.Start()
	for i := 0; i < 20; i++ {
		conn := ConnID(i + 1)
		peer := mkAddr(10, 0, 1, byte(i+1))
		if !n.OnInbound(peer, conn) {
			b.Fatal("inbound refused")
		}
		n.OnMessage(conn, &wire.MsgVersion{Timestamp: env.Now()})
		n.OnMessage(conn, &wire.MsgVerAck{})
	}
	env.run(time.Second)
	env.discard = true
	env.recycle = n.RecycleOutbound
	ping := &wire.MsgPing{}
	// Warm the free lists and queue capacities out of the timed region.
	for i := 0; i < 100; i++ {
		ping.Nonce = uint64(i)
		n.OnMessage(ConnID(i%20+1), ping)
		env.run(10 * time.Millisecond)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ping.Nonce = uint64(i)
		n.OnMessage(ConnID(i%20+1), ping)
		env.run(10 * time.Millisecond)
	}
}

// BenchmarkPolicyDispatch measures the relay hot path with an empty
// policy set: Config.Policies is compiled once in New, so a node with no
// policies must pay nothing per message over the pre-policy baseline.
// Each iteration submits a fresh local transaction and drains the INV
// fan-out to 8 handshook peers.
func BenchmarkPolicyDispatch(b *testing.B) {
	env := newFakeEnv()
	cfg := testConfig(mkAddr(10, 0, 0, 1))
	cfg.Policies = PolicySet{} // "stock": hot paths must be policy-free
	n := New(cfg, env)
	n.Start()
	for i := 0; i < 8; i++ {
		conn := ConnID(i + 1)
		if !n.OnInbound(mkAddr(10, 0, 1, byte(i+1)), conn) {
			b.Fatal("inbound refused")
		}
		n.OnMessage(conn, &wire.MsgVersion{Timestamp: env.Now()})
		n.OnMessage(conn, &wire.MsgVerAck{})
	}
	env.run(time.Second)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.SubmitTx(&wire.MsgTx{
			Version: 2,
			TxIn:    []wire.TxIn{{Sequence: uint32(i)}},
			TxOut:   []wire.TxOut{{Value: int64(i) + 1, PkScript: []byte{0x51}}},
		})
		env.run(10 * time.Millisecond)
	}
}

// BenchmarkHandleAddr measures ADDR ingestion into addrman.
func BenchmarkHandleAddr(b *testing.B) {
	env := newFakeEnv()
	n := New(testConfig(mkAddr(10, 0, 0, 1)), env)
	n.Start()
	if !n.OnInbound(mkAddr(10, 0, 0, 2), 1) {
		b.Fatal("inbound refused")
	}
	n.OnMessage(1, &wire.MsgVersion{Timestamp: env.Now()})
	n.OnMessage(1, &wire.MsgVerAck{})
	env.run(time.Second)
	batch := make([]wire.NetAddress, 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range batch {
			v := i*100 + j
			batch[j] = wire.NetAddress{
				Addr:      mkAddr(byte(v>>16)+1, byte(v>>8), byte(v), 1),
				Timestamp: env.Now(),
			}
		}
		n.OnMessage(1, &wire.MsgAddr{AddrList: batch})
		env.run(10 * time.Millisecond)
	}
}
