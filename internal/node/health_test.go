package node

import (
	"errors"
	"testing"
	"time"

	"repro/internal/wire"
)

// eventRecorder collects emitted events by type for assertions.
type eventRecorder struct{ events []Event }

func (r *eventRecorder) OnEvent(ev Event) { r.events = append(r.events, ev) }

func (r *eventRecorder) count(t EventType) int {
	n := 0
	for _, ev := range r.events {
		if ev.Type == t {
			n++
		}
	}
	return n
}

func (r *eventRecorder) first(t EventType) (Event, bool) {
	for _, ev := range r.events {
		if ev.Type == t {
			return ev, true
		}
	}
	return Event{}, false
}

func TestKeepalivePingOnIdlePeer(t *testing.T) {
	env := newFakeEnv()
	n := New(testConfig(mkAddr(10, 0, 0, 1)), env)
	n.Start()
	completeHandshake(t, n, env, 1, mkAddr(10, 0, 0, 2), 0)

	env.run(3 * time.Minute)
	var ping *wire.MsgPing
	for _, msg := range env.transmitsTo(1) {
		if m, ok := msg.(*wire.MsgPing); ok {
			ping = m
		}
	}
	if ping == nil {
		t.Fatal("no keepalive PING sent to a peer idle past PingInterval")
	}
	if n.Health().PingsSent == 0 {
		t.Error("PingsSent not counted")
	}

	// A matching PONG clears the outstanding ping and keeps the peer.
	n.OnMessage(1, &wire.MsgPong{Nonce: ping.Nonce})
	env.run(5 * time.Second)
	p := n.peerByConn(1)
	if p == nil {
		t.Fatal("peer evicted despite answering the keepalive")
	}
	if p.pingNonce != 0 {
		t.Error("outstanding ping not cleared by matching PONG")
	}
}

func TestSilentPeerEvictedAtStallTimeout(t *testing.T) {
	env := newFakeEnv()
	rec := &eventRecorder{}
	cfg := testConfig(mkAddr(10, 0, 0, 1))
	cfg.Sink = rec
	n := New(cfg, env)
	n.Start()
	completeHandshake(t, n, env, 1, mkAddr(10, 0, 0, 2), 0)

	// The peer never answers the keepalive: idle 2 min → PING, silent
	// 20 more minutes → evicted.
	env.run(25 * time.Minute)
	if n.peerByConn(1) != nil {
		t.Fatal("silent peer still connected after stall timeout")
	}
	if rec.count(EvPeerStalled) != 1 {
		t.Errorf("EvPeerStalled count = %d, want 1", rec.count(EvPeerStalled))
	}
	if n.Health().StallEvictions != 1 {
		t.Errorf("StallEvictions = %d, want 1", n.Health().StallEvictions)
	}
}

func TestHandshakeTimeoutEvictsMutePeer(t *testing.T) {
	env := newFakeEnv()
	rec := &eventRecorder{}
	cfg := testConfig(mkAddr(10, 0, 0, 1))
	cfg.Sink = rec
	n := New(cfg, env)
	n.Start()
	// The peer connects and never sends VERSION (a black-hole peer).
	if !n.OnInbound(mkAddr(10, 0, 0, 9), 7) {
		t.Fatal("inbound refused")
	}
	env.run(2 * time.Minute)
	if n.peerByConn(7) != nil {
		t.Fatal("mute peer still connected past the handshake timeout")
	}
	if rec.count(EvHandshakeTimeout) != 1 {
		t.Errorf("EvHandshakeTimeout count = %d, want 1", rec.count(EvHandshakeTimeout))
	}
	if n.Health().HandshakeEvictions != 1 {
		t.Errorf("HandshakeEvictions = %d, want 1", n.Health().HandshakeEvictions)
	}
}

// startStalledDownload handshakes two peers claiming height 5, then has
// peer 1 announce a header whose body it will never deliver; the node's
// request to peer 1 sits in blocksInFlight.
func startStalledDownload(t *testing.T, n *Node, env *fakeEnv) {
	t.Helper()
	completeHandshake(t, n, env, 1, mkAddr(10, 0, 0, 2), 5)
	completeHandshake(t, n, env, 2, mkAddr(10, 0, 0, 3), 5)
	hdr := wire.BlockHeader{
		Version:   4,
		PrevBlock: testGenesis.BlockHash(),
		Timestamp: uint32(env.Now().Unix()),
		Bits:      0x207fffff,
	}
	n.OnMessage(1, &wire.MsgHeaders{Headers: []wire.BlockHeader{hdr}})
	env.run(5 * time.Second)
	if len(n.blocksInFlight) != 1 {
		t.Fatalf("blocksInFlight = %d, want 1", len(n.blocksInFlight))
	}
}

func TestDisconnectMidIBDClearsInFlightAndResyncs(t *testing.T) {
	env := newFakeEnv()
	n := New(testConfig(mkAddr(10, 0, 0, 1)), env)
	n.Start()
	startStalledDownload(t, n, env)
	before := countGetHeaders(env, 2)

	// Peer 1 drops mid-IBD: its in-flight block must be forgotten and the
	// header sync restarted from peer 2, which is still ahead.
	n.OnDisconnect(1)
	env.run(5 * time.Second)
	if len(n.blocksInFlight) != 0 {
		t.Errorf("blocksInFlight = %d after disconnect, want 0", len(n.blocksInFlight))
	}
	if got := countGetHeaders(env, 2); got != before+1 {
		t.Errorf("GETHEADERS to surviving peer = %d, want %d (resync)", got, before+1)
	}
}

func TestBlockStallEvictsPeerAndResyncs(t *testing.T) {
	env := newFakeEnv()
	rec := &eventRecorder{}
	cfg := testConfig(mkAddr(10, 0, 0, 1))
	cfg.Sink = rec
	n := New(cfg, env)
	n.Start()
	startStalledDownload(t, n, env)
	before := countGetHeaders(env, 2)

	// Peer 1 sits on the requested block: after BlockStallTimeout the
	// stall detector evicts it and restarts sync from peer 2.
	env.run(3 * time.Minute)
	if n.peerByConn(1) != nil {
		t.Fatal("stalling peer still connected past the block-stall timeout")
	}
	ev, ok := rec.first(EvBlockStalled)
	if !ok {
		t.Fatal("no EvBlockStalled emitted")
	}
	if ev.Conn != 1 {
		t.Errorf("EvBlockStalled.Conn = %d, want 1", ev.Conn)
	}
	if len(n.blocksInFlight) != 0 {
		t.Errorf("blocksInFlight = %d after eviction, want 0", len(n.blocksInFlight))
	}
	if got := countGetHeaders(env, 2); got != before+1 {
		t.Errorf("GETHEADERS to surviving peer = %d, want %d (resync)", got, before+1)
	}
	if n.Health().BlockStallEvictions != 1 {
		t.Errorf("BlockStallEvictions = %d, want 1", n.Health().BlockStallEvictions)
	}
}

func TestDialResultAfterStopClosesConnection(t *testing.T) {
	env := newFakeEnv()
	cfg := testConfig(mkAddr(10, 0, 0, 1))
	cfg.SeedAddrs = []wire.NetAddress{{Addr: mkAddr(10, 0, 0, 2), Timestamp: env.Now()}}
	n := New(cfg, env)
	n.Start()
	env.run(3 * time.Second)
	if len(env.dials) == 0 {
		t.Fatal("node never dialed")
	}
	n.Stop()
	// The dial completes after Stop: the node must close the connection
	// rather than adopt it.
	n.OnDialResult(env.dials[0], 42, nil)
	found := false
	for _, c := range env.closed {
		if c == 42 {
			found = true
		}
	}
	if !found {
		t.Error("connection delivered after Stop was not closed")
	}
	if len(n.slotOf) != 0 {
		t.Errorf("peers = %d after Stop, want 0", len(n.slotOf))
	}
}

func TestDialFailureArmsBackoff(t *testing.T) {
	env := newFakeEnv()
	rec := &eventRecorder{}
	remote := mkAddr(10, 0, 0, 2)
	cfg := testConfig(mkAddr(10, 0, 0, 1))
	cfg.Sink = rec
	cfg.SeedAddrs = []wire.NetAddress{{Addr: remote, Timestamp: env.Now()}}
	cfg.MaxFeelers = -1
	cfg.DialBackoffBase = time.Minute
	n := New(cfg, env)
	n.Start()
	env.run(2 * time.Second)
	if len(env.dials) != 1 {
		t.Fatalf("dials = %d, want 1", len(env.dials))
	}
	n.OnDialResult(remote, 0, errors.New("refused"))

	if !n.inBackoff(remote) {
		t.Fatal("failed dial did not arm the backoff")
	}
	ev, ok := rec.first(EvDialBackoff)
	if !ok {
		t.Fatal("no EvDialBackoff emitted")
	}
	// base×2^0 jittered ±50%: the window is [30s, 90s).
	if ev.Delay < 30*time.Second || ev.Delay >= 90*time.Second {
		t.Errorf("backoff delay = %v, want within [30s, 90s)", ev.Delay)
	}
	if ev.Count != 1 {
		t.Errorf("backoff failure count = %d, want 1", ev.Count)
	}

	// Inside the window the address must not be redialed...
	env.run(20 * time.Second)
	if len(env.dials) != 1 {
		t.Fatalf("address redialed inside its backoff window (%d dials)", len(env.dials))
	}
	// ...and once it expires, the maintenance loop tries again.
	env.run(3 * time.Minute)
	if len(env.dials) < 2 {
		t.Error("address never redialed after backoff expiry")
	}

	// A successful dial clears the state entirely.
	n.OnDialResult(remote, 9, nil)
	if len(n.backoff) != 0 {
		t.Errorf("backoff entries = %d after success, want 0", len(n.backoff))
	}
}

func TestBackoffEscalatesWithConsecutiveFailures(t *testing.T) {
	env := newFakeEnv()
	rec := &eventRecorder{}
	remote := mkAddr(10, 0, 0, 2)
	cfg := testConfig(mkAddr(10, 0, 0, 1))
	cfg.Sink = rec
	cfg.DialBackoffBase = time.Minute
	cfg.DialBackoffMax = 4 * time.Minute
	n := New(cfg, env)
	n.Start()
	for i := 0; i < 4; i++ {
		n.dialing[remote] = Outbound
		n.OnDialResult(remote, 0, errors.New("refused"))
	}
	var delays []time.Duration
	for _, ev := range rec.events {
		if ev.Type == EvDialBackoff {
			delays = append(delays, ev.Delay)
		}
	}
	if len(delays) != 4 {
		t.Fatalf("backoff events = %d, want 4", len(delays))
	}
	// Failure i has pre-jitter delay min(1m×2^(i−1), 4m); jitter keeps it
	// within [d/2, 3d/2). The fourth failure must respect the cap.
	if delays[3] >= 6*time.Minute {
		t.Errorf("capped backoff = %v, want < 6m (cap 4m + jitter)", delays[3])
	}
	if delays[3] < 2*time.Minute {
		t.Errorf("fourth backoff = %v, want ≥ 2m (cap floor)", delays[3])
	}
	if n.Health().BackoffsArmed != 4 {
		t.Errorf("BackoffsArmed = %d, want 4", n.Health().BackoffsArmed)
	}
}

func TestNegativeConfigDisablesHealthMachinery(t *testing.T) {
	env := newFakeEnv()
	cfg := testConfig(mkAddr(10, 0, 0, 1))
	cfg.PingInterval = -1
	cfg.StallTimeout = -1
	cfg.HandshakeTimeout = -1
	cfg.BlockStallTimeout = -1
	cfg.DialBackoffBase = -1
	n := New(cfg, env)
	if d := n.healthTickInterval(); d != 0 {
		t.Fatalf("healthTickInterval = %v with everything disabled, want 0", d)
	}
	n.Start()
	// A mute inbound peer survives forever with the machinery off.
	if !n.OnInbound(mkAddr(10, 0, 0, 9), 7) {
		t.Fatal("inbound refused")
	}
	env.run(30 * time.Minute)
	if n.peerByConn(7) == nil {
		t.Error("peer evicted despite disabled health machinery")
	}
	// Failed dials arm nothing.
	n.dialing[mkAddr(10, 0, 0, 2)] = Outbound
	n.OnDialResult(mkAddr(10, 0, 0, 2), 0, errors.New("refused"))
	if len(n.backoff) != 0 {
		t.Error("backoff armed despite negative DialBackoffBase")
	}
}
