package node

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/addrman"
	"repro/internal/wire"
)

func TestRelayPolicyStringStable(t *testing.T) {
	cases := map[RelayPolicy]string{
		RoundRobin:       "round-robin",
		Broadcast:        "broadcast",
		PriorityOutbound: "priority-outbound",
		RelayPolicy(0):   "unknown(0)",
		RelayPolicy(42):  "unknown(42)",
		RelayPolicy(-3):  "unknown(-3)",
	}
	for p, want := range cases {
		if got := p.String(); got != want {
			t.Errorf("RelayPolicy(%d).String() = %q, want %q", int(p), got, want)
		}
	}
}

func TestParseRelayPolicyRoundTrip(t *testing.T) {
	for _, p := range []RelayPolicy{RoundRobin, Broadcast, PriorityOutbound} {
		got, err := ParseRelayPolicy(p.String())
		if err != nil {
			t.Fatalf("ParseRelayPolicy(%q): %v", p.String(), err)
		}
		if got != p {
			t.Errorf("ParseRelayPolicy(%q) = %v, want %v", p.String(), got, p)
		}
	}
	if p, err := ParseRelayPolicy("priority"); err != nil || p != PriorityOutbound {
		t.Errorf("ParseRelayPolicy(priority) = %v, %v; want PriorityOutbound", p, err)
	}
	if _, err := ParseRelayPolicy("unknown(0)"); err == nil {
		t.Error("ParseRelayPolicy accepted the unknown sentinel")
	}
	if _, err := ParseRelayPolicy(""); err == nil {
		t.Error("ParseRelayPolicy accepted the empty string")
	}
}

func TestPolicySetEncoding(t *testing.T) {
	cases := []string{
		"stock",
		"tried-only-addr",
		"horizon-17d",
		"horizon-3d",
		"priority-relay",
		"ideal-broadcast",
		"unreachable-tx-relay",
		"churn-resilient-peering",
		"tried-only-addr+horizon-17d+priority-relay",
		"churn-resilient-peering+unreachable-tx-relay",
	}
	for _, enc := range cases {
		set, err := ParsePolicySet(enc)
		if err != nil {
			t.Fatalf("ParsePolicySet(%q): %v", enc, err)
		}
		if got := set.String(); got != enc {
			t.Errorf("encode(parse(%q)) = %q", enc, got)
		}
	}
	if got := (PolicySet{}).String(); got != "stock" {
		t.Errorf("empty set encodes as %q, want stock", got)
	}
	if got := PolicySet(nil).String(); got != "stock" {
		t.Errorf("nil set encodes as %q, want stock", got)
	}
}

func TestParsePolicySetRejects(t *testing.T) {
	for _, bad := range []string{
		"", "nope", "stock+tried-only-addr", "tried-only-addr+tried-only-addr",
		"horizon-0d", "horizon--1d", "horizon-07d", "horizon-+7d", "horizon-d",
		"horizon-17", "tried-only-addr+", "+tried-only-addr", "HORIZON-17D",
	} {
		if set, err := ParsePolicySet(bad); err == nil {
			t.Errorf("ParsePolicySet(%q) accepted -> %q", bad, set.String())
		}
	}
}

func TestPolicyNamesAllParse(t *testing.T) {
	for _, name := range PolicyNames() {
		p, err := PolicyByName(name)
		if err != nil {
			t.Fatalf("PolicyByName(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("PolicyByName(%q).Name() = %q", name, p.Name())
		}
	}
}

// TestResolvePoliciesHooks checks each hook lands on the compiled form
// and that the legacy knobs stay the baseline a policy overrides.
func TestResolvePoliciesHooks(t *testing.T) {
	base := Config{RelayPolicy: RoundRobin}.withDefaults()
	am := addrman.Config{}

	c, amOut := resolvePolicies(base, am)
	if c.relay != RoundRobin || c.fwdTxUnreachable || c.anchorsEnabled {
		t.Errorf("empty set compiled to %+v", c)
	}
	if amOut.TriedOnlyGetAddr || amOut.Horizon != 0 {
		t.Errorf("empty set rewrote addrman config: %+v", amOut)
	}

	base.Policies = MustPolicySet("tried-only-addr+horizon-17d+priority-relay")
	c, amOut = resolvePolicies(base, am)
	if c.relay != PriorityOutbound {
		t.Errorf("relay = %v, want priority-outbound", c.relay)
	}
	if !amOut.TriedOnlyGetAddr {
		t.Error("tried-only-addr did not set TriedOnlyGetAddr")
	}
	if amOut.Horizon != 17*24*time.Hour {
		t.Errorf("horizon = %v, want 17 days", amOut.Horizon)
	}

	base.Policies = MustPolicySet("unreachable-tx-relay+churn-resilient-peering")
	c, _ = resolvePolicies(base, am)
	if !c.fwdTxUnreachable || !c.anchorsEnabled {
		t.Errorf("remedy hooks not compiled: %+v", c)
	}
	if c.relay != RoundRobin {
		t.Errorf("remedy set changed relay to %v", c.relay)
	}

	// Last RelaySchedPolicy wins over both the legacy field and earlier
	// policies.
	base.Policies = MustPolicySet("priority-relay+ideal-broadcast")
	c, _ = resolvePolicies(base, am)
	if c.relay != Broadcast {
		t.Errorf("relay = %v, want broadcast (last wins)", c.relay)
	}
}

// TestUnreachableTxForwardGate: a stock unreachable node must not
// forward third-party transactions; with unreachable-tx-relay it must.
func TestUnreachableTxForwardGate(t *testing.T) {
	run := func(policies PolicySet) (invs int) {
		env := newFakeEnv()
		cfg := testConfig(mkAddr(10, 0, 0, 1))
		cfg.Reachable = false
		cfg.Policies = policies
		n := New(cfg, env)
		n.Start()
		// Hand-build two handshook peers, the way an outbound dial would
		// (unreachable nodes refuse OnInbound).
		for i := 0; i < 2; i++ {
			p := n.addPeer(ConnID(i+1), mkAddr(10, 0, 1, byte(i+1)), Outbound)
			p.versionReceived, p.verackReceived = true, true
			p.handshook = true
		}
		tx := &wire.MsgTx{Version: 2, TxIn: []wire.TxIn{{Sequence: 1}},
			TxOut: []wire.TxOut{{Value: 1, PkScript: []byte{0x51}}}}
		n.OnMessage(1, tx)
		env.run(time.Second)
		for _, tr := range env.transmits {
			if inv, ok := tr.msg.(*wire.MsgInv); ok {
				for _, iv := range inv.InvList {
					if iv.Type == wire.InvTypeTx {
						invs++
					}
				}
			}
		}
		return invs
	}
	if got := run(nil); got != 0 {
		t.Errorf("stock unreachable node forwarded %d tx INVs, want 0", got)
	}
	if got := run(MustPolicySet("unreachable-tx-relay")); got == 0 {
		t.Error("unreachable-tx-relay node forwarded no tx INVs")
	}
}

// TestAnchorPeering: under churn-resilient-peering a confirmed outbound
// peer is redialed first after a disconnect, and a failed anchor dial
// evicts it.
func TestAnchorPeering(t *testing.T) {
	env := newFakeEnv()
	cfg := testConfig(mkAddr(10, 0, 0, 1))
	cfg.Policies = MustPolicySet("churn-resilient-peering")
	n := New(cfg, env)
	n.Start()

	anchor := mkAddr(10, 0, 2, 7)
	n.noteAnchor(anchor)
	na, ok := n.selectDialTarget(false)
	if !ok || na.Addr != anchor {
		t.Fatalf("selectDialTarget = %v, %v; want anchor %v", na.Addr, ok, anchor)
	}
	// A failed dial evicts the anchor; the empty addrman then yields
	// nothing.
	n.startDial(na, Outbound)
	n.OnDialResult(anchor, 0, errors.New("connection refused"))
	if len(n.anchors) != 0 {
		t.Errorf("failed anchor not evicted: %v", n.anchors)
	}
	if _, ok := n.selectDialTarget(false); ok {
		t.Error("selectDialTarget found a target after anchor eviction on an empty addrman")
	}
	// Repeat confirmations dedupe and cap.
	for i := 0; i < 3*maxAnchors; i++ {
		n.noteAnchor(mkAddr(10, 3, byte(i>>8), byte(i)))
	}
	if len(n.anchors) != maxAnchors {
		t.Errorf("anchor list length %d, want cap %d", len(n.anchors), maxAnchors)
	}
	n.noteAnchor(n.anchors[0])
	if len(n.anchors) != maxAnchors {
		t.Errorf("re-confirming an anchor grew the list to %d", len(n.anchors))
	}
}

// FuzzParsePolicySet: encode→parse→encode is the identity on every
// accepted input, and no input panics.
func FuzzParsePolicySet(f *testing.F) {
	f.Add("stock")
	f.Add("tried-only-addr+horizon-17d+priority-relay")
	f.Add("horizon-9999d")
	f.Add("stock+stock")
	f.Add("+")
	f.Add("horizon-00017d")
	f.Add(strings.Repeat("tried-only-addr+", 40) + "stock")
	f.Fuzz(func(t *testing.T, s string) {
		set, err := ParsePolicySet(s)
		if err != nil {
			return
		}
		enc := set.String()
		// Accepted inputs are already canonical: the encoding is
		// bijective, so parse must be the inverse of encode.
		if enc != s {
			t.Fatalf("parse(%q).String() = %q", s, enc)
		}
		set2, err := ParsePolicySet(enc)
		if err != nil {
			t.Fatalf("re-parse(%q): %v", enc, err)
		}
		if set2.String() != enc {
			t.Fatalf("re-encode(%q) = %q", enc, set2.String())
		}
	})
}
