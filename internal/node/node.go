// Package node implements a full Bitcoin node as a deterministic state
// machine, reproducing the Bitcoin Core v0.20.1 mechanisms the paper's
// §IV analyzes at the source level:
//
//   - connection management: 8 outbound slots filled by sampling addrman's
//     new/tried tables with equal probability, up to 117 inbound slots, and
//     periodic feeler connections (§IV-B);
//   - the ADDR/GETADDR gossip protocol, including self-advertisement and
//     the 1000-address response cap (§III, §IV-B);
//   - the net.cpp message-handling architecture: per-peer vProcessMsg and
//     vSendMsg queues drained by a round-robin loop that services one
//     message per connection per iteration (Figure 9 / Algorithm 3), which
//     is the root cause of the block relay delays in §IV-C;
//   - INV-based and BIP-152 compact-block relay, initial block download,
//     and mempool maintenance.
//
// The node performs no I/O itself. It runs against an Env (clock, timers,
// dialing, transmission), which the simnet package implements with virtual
// time and the tcpnet package implements over real sockets. Relay policy
// is pluggable so the paper's §V refinement (priority block relay to
// outbound connections) can be compared against the stock round-robin and
// the idealized broadcast of the theoretical models.
package node

import (
	"fmt"
	"math/rand"
	"net/netip"
	"time"

	"repro/internal/addrman"
	"repro/internal/chain"
	"repro/internal/chainhash"
	"repro/internal/obs"
	"repro/internal/wire"
)

// ConnID identifies a connection. IDs are assigned by the environment and
// are opaque to the node.
type ConnID int64

// Direction classifies a connection relative to this node.
type Direction int

// Connection directions.
const (
	// Outbound connections are dialed by this node and always reach
	// reachable peers — the distinction §V's priority relay exploits.
	Outbound Direction = iota + 1
	// Inbound connections are accepted from reachable or unreachable
	// peers.
	Inbound
	// Feeler connections probe new-table addresses and disconnect
	// immediately after a successful handshake.
	Feeler
)

// String returns a short direction label.
func (d Direction) String() string {
	switch d {
	case Outbound:
		return "outbound"
	case Inbound:
		return "inbound"
	case Feeler:
		return "feeler"
	default:
		return "unknown"
	}
}

// RelayPolicy selects how queued messages are scheduled across
// connections.
type RelayPolicy int

// Relay policies.
const (
	// RoundRobin is Bitcoin Core's behaviour: one message per connection
	// per message-handler loop (Algorithm 3 in the paper).
	RoundRobin RelayPolicy = iota + 1
	// Broadcast is the idealized lock-step model of the theoretical
	// literature: announcements leave to every connection simultaneously.
	Broadcast
	// PriorityOutbound is the paper's §V refinement: blocks jump the send
	// queue and outbound (always-reachable) connections are serviced
	// first.
	PriorityOutbound
)

// String returns the policy name. Out-of-range values render as a
// stable "unknown(N)" form, so logs and CSV cells stay unambiguous and
// distinct values never collide on a bare "unknown".
func (p RelayPolicy) String() string {
	switch p {
	case RoundRobin:
		return "round-robin"
	case Broadcast:
		return "broadcast"
	case PriorityOutbound:
		return "priority-outbound"
	default:
		return fmt.Sprintf("unknown(%d)", int(p))
	}
}

// Env is the node's window to the outside world. Implementations provide
// time, randomness, timers, and connectivity; the simnet implementation
// uses virtual time, the tcpnet implementation real sockets.
type Env interface {
	// Now returns the current (possibly virtual) time.
	Now() time.Time
	// Rand returns the node's random source.
	Rand() *rand.Rand
	// Schedule runs fn after d elapses. Implementations may drop the
	// callback if the node is stopped before it fires.
	Schedule(d time.Duration, fn func())
	// Dial asynchronously opens a connection to remote; the result
	// arrives via OnDialResult.
	Dial(remote netip.AddrPort)
	// Transmit puts msg on the wire for conn after the given local
	// serialization delay. Delivery latency is the environment's
	// business.
	Transmit(conn ConnID, msg wire.Message, delay time.Duration)
	// Disconnect closes conn; both ends observe OnDisconnect.
	Disconnect(conn ConnID)
}

// Default protocol limits, matching Bitcoin Core.
const (
	// DefaultMaxOutbound is the outbound connection target.
	DefaultMaxOutbound = 8
	// DefaultMaxInbound is the inbound connection capacity.
	DefaultMaxInbound = 117
	// DefaultMaxFeelers is the number of concurrent feeler connections.
	DefaultMaxFeelers = 2
	// DefaultFeelerInterval is how often a feeler is attempted.
	DefaultFeelerInterval = 2 * time.Minute
	// DefaultConnectInterval is how often the openConnections loop tries
	// to fill an empty outbound slot.
	DefaultConnectInterval = 500 * time.Millisecond
	// DefaultLoopOverhead is the fixed cost of one message-handler loop
	// iteration.
	DefaultLoopOverhead = time.Millisecond
	// DefaultMsgProcTime is the processing cost of one inbound message.
	DefaultMsgProcTime = 200 * time.Microsecond
	// DefaultBytesPerSec is the effective per-socket serialization rate.
	DefaultBytesPerSec = 2 << 20
	// DefaultBlockSizeHint is the synthetic full-block wire size used for
	// timing when simulated blocks carry few transactions (real 2020
	// blocks average ~1.2 MB).
	DefaultBlockSizeHint = 1 << 20
	// DefaultPingInterval is how long a peer may stay quiet before a
	// keepalive PING is sent (Bitcoin Core's PING_INTERVAL).
	DefaultPingInterval = 2 * time.Minute
	// DefaultStallTimeout disconnects a peer whose keepalive PING has
	// gone unanswered for this long (Bitcoin Core's TIMEOUT_INTERVAL).
	DefaultStallTimeout = 20 * time.Minute
	// DefaultHandshakeTimeout disconnects peers that fail to complete
	// VERSION/VERACK (Bitcoin Core's version-handshake timeout).
	DefaultHandshakeTimeout = 60 * time.Second
	// DefaultBlockStallTimeout evicts a peer that sits on a requested
	// block for this long (Bitcoin Core's 2-minute stalling rule,
	// simplified to a flat per-request deadline).
	DefaultBlockStallTimeout = 2 * time.Minute
	// DefaultDialBackoffBase is the first reconnect backoff applied to
	// an address after a failed dial; it doubles per consecutive failure.
	DefaultDialBackoffBase = 10 * time.Second
	// DefaultDialBackoffMax caps the per-address reconnect backoff.
	DefaultDialBackoffMax = 10 * time.Minute
)

// Config parameterizes a node.
type Config struct {
	// Self is the node's own advertised address.
	Self wire.NetAddress
	// Reachable nodes accept inbound connections; unreachable nodes (the
	// paper's NATed population) only dial out.
	Reachable bool
	// MaxOutbound, MaxInbound, and MaxFeelers bound the connection slots
	// (defaults applied when zero; negative disables that slot type,
	// which tests use to isolate one maintenance loop).
	MaxOutbound int
	MaxInbound  int
	MaxFeelers  int
	// FeelerInterval and ConnectInterval control the maintenance cadence.
	FeelerInterval  time.Duration
	ConnectInterval time.Duration
	// ConnectIdleInterval is the maintenance cadence while all outbound
	// slots are filled; a larger value keeps large simulations cheap
	// without changing behaviour (the loop is re-armed immediately on
	// disconnect).
	ConnectIdleInterval time.Duration
	// MaxPendingDials caps concurrent outbound connection attempts.
	// Bitcoin Core's ThreadOpenConnections is strictly serial (one
	// blocking connect per loop — use 1 to model it); the default equals
	// MaxOutbound, which recovers slots faster.
	MaxPendingDials int
	// RelayPolicy selects the message scheduling policy (RoundRobin when
	// zero). Normalization happens here and nowhere else: withDefaults
	// is the single place a zero RelayPolicy becomes RoundRobin.
	//
	// Deprecated: prefer Policies (priority-relay / ideal-broadcast).
	// The field remains the compile baseline a RelaySchedPolicy
	// overrides, so existing callers keep byte-identical behaviour.
	RelayPolicy RelayPolicy
	// CompactBlocks enables BIP-152 high-bandwidth block relay.
	CompactBlocks bool
	// AddrHorizon overrides the addrman eviction horizon (§V refinement).
	//
	// Deprecated: prefer Policies (horizon-<N>d).
	AddrHorizon time.Duration
	// TriedOnlyGetAddr makes GETADDR responses sample only the tried
	// table (§V refinement).
	//
	// Deprecated: prefer Policies (tried-only-addr).
	TriedOnlyGetAddr bool
	// Policies is the ordered intervention set (see policy.go). It is
	// compiled once in New into plain fields — the hot paths never
	// consult the set — and applies on top of the legacy knob fields
	// above (last policy implementing a hook wins).
	Policies PolicySet
	// GetAddrResponder, when non-nil, overrides the ADDR response —
	// the hook used to model the paper's §IV-B malicious flooders.
	GetAddrResponder func() []wire.NetAddress
	// AddrSink, when non-nil, receives every multi-address ADDR payload
	// this node ingests (GETADDR response chunks; one-address
	// self-advertisements are skipped). It is the measurement seam the
	// Grundmann estimators attach to — nil costs nothing on the ADDR
	// path.
	AddrSink func(from netip.AddrPort, addrs []wire.NetAddress)
	// SeedAddrs boot the address manager (DNS-seeder equivalent).
	SeedAddrs []wire.NetAddress
	// Genesis anchors the chain. Required.
	Genesis *wire.MsgBlock
	// UserAgent is advertised in the VERSION handshake.
	UserAgent string
	// LoopOverhead, MsgProcTime, BytesPerSec, and BlockSizeHint
	// parameterize the service-time model (defaults applied when zero).
	LoopOverhead  time.Duration
	MsgProcTime   time.Duration
	BytesPerSec   int
	BlockSizeHint int
	// Sink receives instrumentation events; nil discards them.
	Sink EventSink
	// Metrics, when set, receives the node's counters and latency
	// histograms (node.* names: dial outcomes, health evictions, relay
	// and block-download delays). Nil disables metric collection.
	Metrics *obs.Registry
	// Tracer, when set, records structured dial/handshake/relay/
	// block-download events. Nil disables tracing.
	Tracer *obs.Tracer
	// AddrManKey seeds addrman bucket placement.
	AddrManKey uint64

	// PingInterval is the keepalive cadence: a PING is sent on any
	// connection idle for this long (default 2 min, like Bitcoin Core;
	// negative disables keepalive).
	PingInterval time.Duration
	// StallTimeout disconnects a peer whose keepalive PING has gone
	// unanswered for this long (default 20 min; negative disables).
	StallTimeout time.Duration
	// HandshakeTimeout disconnects a peer that has not completed
	// VERSION/VERACK within this window (default 60 s; negative
	// disables), evicting black-hole peers that accept and stall.
	HandshakeTimeout time.Duration
	// BlockStallTimeout evicts a peer that has held a requested block
	// for this long without delivering it, so IBD can continue from
	// another peer (default 2 min; negative disables).
	BlockStallTimeout time.Duration
	// DialBackoffBase and DialBackoffMax shape the per-address
	// reconnect backoff: after a failed dial the address is skipped for
	// base×2^(failures−1), jittered ±50% and capped at max, so dial
	// storms do not hammer dead addresses (negative base disables).
	DialBackoffBase time.Duration
	DialBackoffMax  time.Duration
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.MaxOutbound == 0 {
		c.MaxOutbound = DefaultMaxOutbound
	}
	if c.MaxInbound == 0 {
		c.MaxInbound = DefaultMaxInbound
	}
	if c.MaxFeelers == 0 {
		c.MaxFeelers = DefaultMaxFeelers
	}
	if c.FeelerInterval == 0 {
		c.FeelerInterval = DefaultFeelerInterval
	}
	if c.ConnectInterval == 0 {
		c.ConnectInterval = DefaultConnectInterval
	}
	if c.ConnectIdleInterval == 0 {
		c.ConnectIdleInterval = 30 * time.Second
	}
	if c.MaxPendingDials == 0 {
		c.MaxPendingDials = c.MaxOutbound
	}
	if c.RelayPolicy == 0 {
		c.RelayPolicy = RoundRobin
	}
	if c.LoopOverhead == 0 {
		c.LoopOverhead = DefaultLoopOverhead
	}
	if c.MsgProcTime == 0 {
		c.MsgProcTime = DefaultMsgProcTime
	}
	if c.BytesPerSec == 0 {
		c.BytesPerSec = DefaultBytesPerSec
	}
	if c.BlockSizeHint == 0 {
		c.BlockSizeHint = DefaultBlockSizeHint
	}
	if c.UserAgent == "" {
		c.UserAgent = "/Satoshi:0.20.1(repro)/"
	}
	if c.PingInterval == 0 {
		c.PingInterval = DefaultPingInterval
	}
	if c.StallTimeout == 0 {
		c.StallTimeout = DefaultStallTimeout
	}
	if c.HandshakeTimeout == 0 {
		c.HandshakeTimeout = DefaultHandshakeTimeout
	}
	if c.BlockStallTimeout == 0 {
		c.BlockStallTimeout = DefaultBlockStallTimeout
	}
	if c.DialBackoffBase == 0 {
		c.DialBackoffBase = DefaultDialBackoffBase
	}
	if c.DialBackoffMax == 0 {
		c.DialBackoffMax = DefaultDialBackoffMax
	}
	return c
}

// Node is the deterministic Bitcoin node state machine. All methods must
// be called from the environment's event loop (single-threaded execution,
// as with the simnet scheduler); the node performs no internal locking.
type Node struct {
	cfg Config
	env Env

	addrman *addrman.AddrMan
	chain   *chain.Chain
	mempool *chain.Mempool

	// Peer bookkeeping is structure-of-arrays: slots holds peers in
	// arrival order (the round-robin order), slotOf maps a ConnID to its
	// slot index. Removal leaves a nil hole so slot indices stay stable
	// while the pump iterates; holes are compacted outside the pump once
	// they outnumber live entries. This replaces the old rrOrder slice +
	// per-ID map lookup on every pump iteration.
	slots     []*Peer
	slotOf    map[ConnID]int32
	slotHoles int
	inPump    bool
	// Per-direction connection counters, maintained by addPeer/removePeer
	// so ConnCounts is O(1) (it runs on every maintenance tick).
	nOutbound int
	nInbound  int
	nFeelers  int

	byAddr     map[netip.AddrPort]*Peer
	dialing    map[netip.AddrPort]Direction
	pending    int // total queued messages across all peers
	pumpArmed  bool
	busyUntil  time.Time // virtual time the current loop's socket work ends
	maintGen   uint64    // supersession counter for maintenance scheduling
	started    bool
	stopped    bool
	syncedOnce bool

	// pumpFn is the cached method value for pumpOnce: Schedule is called
	// on every pump arm and re-arm, and a fresh method-value closure per
	// call would allocate on the hottest path in the package.
	pumpFn func()

	// pongFree and invFree recycle outbound message values. They are fed
	// only by RecycleOutbound — environments that fully consume messages
	// at Transmit time — so under simnet (which retains and may
	// re-deliver message pointers) they stay empty and every message is
	// freshly allocated, exactly as before.
	pongFree []*wire.MsgPong
	invFree  []*wire.MsgInv

	// Connection statistics (Figure 6/7 observables).
	dialAttempts  int
	dialSuccesses int

	// pol is the compiled policy set (resolved once in New); hot paths
	// read its plain fields, never Config.Policies.
	pol compiledPolicies
	// anchors is the churn-resilient-peering state: recently-good
	// outbound peer addresses in confirmation order, retried first when
	// an outbound slot frees up. A failed anchor dial evicts the
	// address, so a stale list cannot starve the addrman path.
	anchors []netip.AddrPort

	// backoff holds the per-address reconnect schedule; addresses are
	// skipped by selectDialTarget until their deadline passes.
	backoff map[netip.AddrPort]*backoffState
	// health aggregates the robustness counters (stall evictions,
	// keepalive traffic, backoff arms) for measurement code.
	health HealthStats
	// met holds the obs metric handles (nil-safe no-ops when
	// Config.Metrics is nil); tracer records structured events.
	met    nodeMetrics
	tracer *obs.Tracer
	// dialStarted remembers when each in-flight dial began, for the
	// dial trace spans.
	dialStarted map[netip.AddrPort]time.Time

	// blocksInFlight tracks requested blocks (and when they were
	// requested) to avoid duplicate GETDATA and to detect stalls.
	blocksInFlight map[chainhash.Hash]inFlightBlock
	// seenTimes records when each object (block or tx) was first seen,
	// for relay-delay instrumentation: the paper measures receive-to-
	// last-connection delay including body transfers.
	seenTimes map[chainhash.Hash]time.Time
	// pendingCmpct holds compact blocks awaiting GETBLOCKTXN completion.
	pendingCmpct map[chainhash.Hash]*pendingCompact
}

// pendingCompact is a compact block whose reconstruction awaits a
// BLOCKTXN response.
type pendingCompact struct {
	cb      *wire.MsgCmpctBlock
	partial *chain.ReconstructResult
	from    ConnID
}

// inFlightBlock records who a block was requested from and when, for the
// block-download stall detector.
type inFlightBlock struct {
	conn      ConnID
	requested time.Time
}

// nodeMetrics groups the obs handles the node writes on its hot paths.
// Each handle is resolved once in New and is a nil no-op when metrics
// are disabled.
type nodeMetrics struct {
	dialAttempt     *obs.Counter
	dialSuccess     *obs.Counter
	dialFail        *obs.Counter
	pingsSent       *obs.Counter
	stallEvict      *obs.Counter
	handshakeEvict  *obs.Counter
	blockStallEvict *obs.Counter
	backoffArmed    *obs.Counter
	relayBlock      *obs.Histogram
	relayTx         *obs.Histogram
	handshakeTime   *obs.Histogram
	blockDownload   *obs.Histogram
}

// resolveMetrics binds the handles against reg (all nil when reg is nil).
func resolveMetrics(reg *obs.Registry) nodeMetrics {
	return nodeMetrics{
		dialAttempt:     reg.Counter("node.dial.attempt"),
		dialSuccess:     reg.Counter("node.dial.success"),
		dialFail:        reg.Counter("node.dial.fail"),
		pingsSent:       reg.Counter("node.ping.sent"),
		stallEvict:      reg.Counter("node.evict.stall"),
		handshakeEvict:  reg.Counter("node.evict.handshake"),
		blockStallEvict: reg.Counter("node.evict.blockstall"),
		backoffArmed:    reg.Counter("node.backoff.armed"),
		relayBlock:      reg.Histogram("node.relay.block.delay"),
		relayTx:         reg.Histogram("node.relay.tx.delay"),
		handshakeTime:   reg.Histogram("node.handshake.time"),
		blockDownload:   reg.Histogram("node.block.download.time"),
	}
}

// New constructs a node bound to env. Call Start to bring it online.
func New(cfg Config, env Env) *Node {
	cfg = cfg.withDefaults()
	if cfg.Genesis == nil {
		panic("node: Config.Genesis is required")
	}
	n := &Node{
		cfg:            cfg,
		env:            env,
		chain:          chain.New(cfg.Genesis),
		mempool:        chain.NewMempool(),
		slotOf:         make(map[ConnID]int32),
		byAddr:         make(map[netip.AddrPort]*Peer),
		dialing:        make(map[netip.AddrPort]Direction),
		backoff:        make(map[netip.AddrPort]*backoffState),
		blocksInFlight: make(map[chainhash.Hash]inFlightBlock),
		pendingCmpct:   make(map[chainhash.Hash]*pendingCompact),
		seenTimes:      make(map[chainhash.Hash]time.Time),
		met:            resolveMetrics(cfg.Metrics),
		tracer:         cfg.Tracer,
		dialStarted:    make(map[netip.AddrPort]time.Time),
	}
	amCfg := addrman.Config{
		Key:              cfg.AddrManKey,
		Horizon:          cfg.AddrHorizon,
		TriedOnlyGetAddr: cfg.TriedOnlyGetAddr,
		Now:              env.Now,
		Rand:             env.Rand(),
	}
	n.pol, amCfg = resolvePolicies(cfg, amCfg)
	n.addrman = addrman.New(amCfg)
	n.pumpFn = n.pumpOnce
	return n
}

// Policies returns the node's configured intervention set.
func (n *Node) Policies() PolicySet { return n.cfg.Policies }

// Start boots the node: seeds the address manager and begins the
// connection maintenance and feeler loops.
func (n *Node) Start() {
	if n.started {
		return
	}
	n.started = true
	if len(n.cfg.SeedAddrs) > 0 {
		n.addrman.Add(n.cfg.SeedAddrs, n.cfg.Self.Addr.Addr())
	}
	n.emit(Event{Type: EvStarted, Node: n.cfg.Self.Addr, Time: n.env.Now()})
	n.scheduleMaintenance(0)
	n.env.Schedule(n.cfg.FeelerInterval, n.feelerTick)
	if d := n.healthTickInterval(); d > 0 {
		n.env.Schedule(d, n.healthTick)
	}
}

// Stop takes the node offline: every connection is dropped and future
// callbacks become no-ops.
func (n *Node) Stop() {
	if n.stopped {
		return
	}
	n.stopped = true
	for _, p := range n.slots {
		if p != nil {
			n.env.Disconnect(p.id)
		}
	}
	n.slots = nil
	n.slotOf = make(map[ConnID]int32)
	n.slotHoles = 0
	n.nOutbound, n.nInbound, n.nFeelers = 0, 0, 0
	n.byAddr = make(map[netip.AddrPort]*Peer)
	n.emit(Event{Type: EvStopped, Node: n.cfg.Self.Addr, Time: n.env.Now()})
}

// Stopped reports whether Stop was called.
func (n *Node) Stopped() bool { return n.stopped }

// Self returns the node's advertised address.
func (n *Node) Self() netip.AddrPort { return n.cfg.Self.Addr }

// Chain exposes the node's chain state (read-mostly; analyses sample tip
// heights).
func (n *Node) Chain() *chain.Chain { return n.chain }

// Mempool exposes the node's transaction pool.
func (n *Node) Mempool() *chain.Mempool { return n.mempool }

// AddrMan exposes the node's address manager for measurement code.
func (n *Node) AddrMan() *addrman.AddrMan { return n.addrman }

// DialStats reports outbound connection attempts and successes since
// start — the Figure 7 observables.
func (n *Node) DialStats() (attempts, successes int) {
	return n.dialAttempts, n.dialSuccesses
}

// PeerAddrs returns the remote addresses of current connections,
// filtered by direction (0 = all).
func (n *Node) PeerAddrs(dir Direction) []netip.AddrPort {
	out := make([]netip.AddrPort, 0, len(n.slots)-n.slotHoles)
	for _, p := range n.slots {
		if p == nil {
			continue
		}
		if dir != 0 && p.dir != dir {
			continue
		}
		out = append(out, p.addr)
	}
	return out
}

// ConnCounts returns the number of established connections by direction —
// the Figure 6 observable (feelers included).
func (n *Node) ConnCounts() (outbound, inbound, feelers int) {
	return n.nOutbound, n.nInbound, n.nFeelers
}

// IsSynced reports whether the node believes it is at the network tip
// (completed at least one header sync with no outstanding block
// requests).
func (n *Node) IsSynced() bool {
	return n.syncedOnce && len(n.blocksInFlight) == 0
}

// noteSeen records the first-seen time of an object, bounding the map.
func (n *Node) noteSeen(h chainhash.Hash, t time.Time) {
	const maxSeen = 8192
	if len(n.seenTimes) >= maxSeen {
		n.seenTimes = make(map[chainhash.Hash]time.Time, maxSeen/4)
	}
	if _, ok := n.seenTimes[h]; !ok {
		n.seenTimes[h] = t
	}
}

// traceDeliver emits the delivery-span trace event for an accepted
// object. Span identity is SpanKey-derived, so the receiving node's
// Parent matches the sender's own delivery Span without any shared
// state — PropagationTree stitches the hops back together from the
// flat stream. from is the zero AddrPort at the origin (local mine or
// submit), which yields Parent 0 (tree root).
func (n *Node) traceDeliver(kind string, h chainhash.Hash, from netip.AddrPort, at time.Time) {
	if n.tracer == nil {
		return
	}
	self := n.cfg.Self.Addr
	ev := obs.Event{
		Time: at, Kind: kind, From: from, To: self,
		Detail: h.String()[:16],
		Span:   obs.SpanKey(self, h[:]),
	}
	if from.IsValid() {
		ev.Parent = obs.SpanKey(from, h[:])
	} else {
		ev.From = self
	}
	n.tracer.Emit(ev)
}

// emit delivers an instrumentation event to the configured sink.
func (n *Node) emit(ev Event) {
	if n.cfg.Sink != nil {
		n.cfg.Sink.OnEvent(ev)
	}
}

// openConnectionsTick fills empty outbound slots, one dial per tick, then
// reschedules itself — Bitcoin Core's ThreadOpenConnections cadence.
func (n *Node) openConnectionsTick() {
	if n.stopped {
		return
	}
	outbound, _, _ := n.ConnCounts()
	pendingOut := 0
	for _, dir := range n.dialing {
		if dir == Outbound {
			pendingOut++
		}
	}
	interval := n.cfg.ConnectIdleInterval
	if outbound+pendingOut < n.cfg.MaxOutbound && pendingOut < n.cfg.MaxPendingDials {
		if na, ok := n.selectDialTarget(false); ok {
			n.startDial(na, Outbound)
		}
		interval = n.cfg.ConnectInterval
	}
	n.scheduleMaintenance(interval)
}

// scheduleMaintenance arms the next openConnectionsTick, superseding any
// previously scheduled one (so a disconnect can pull the next attempt
// forward without creating duplicate tick chains).
func (n *Node) scheduleMaintenance(d time.Duration) {
	n.maintGen++
	gen := n.maintGen
	n.env.Schedule(d, func() {
		if gen != n.maintGen {
			return
		}
		n.openConnectionsTick()
	})
}

// feelerTick opens short-lived feeler connections that test new-table
// addresses, moving responsive ones to tried (Bitcoin Core PR #9037,
// which the paper's Figure 6 observes as connections 9 and 10).
func (n *Node) feelerTick() {
	if n.stopped {
		return
	}
	_, _, feelers := n.ConnCounts()
	pendingFeelers := 0
	for _, dir := range n.dialing {
		if dir == Feeler {
			pendingFeelers++
		}
	}
	if feelers+pendingFeelers < n.cfg.MaxFeelers {
		if na, ok := n.selectDialTarget(true); ok {
			n.startDial(na, Feeler)
		}
	}
	n.env.Schedule(n.cfg.FeelerInterval, n.feelerTick)
}

// selectDialTarget samples addrman for a dialable address, skipping self,
// current peers, and in-flight dials. Under churn-resilient-peering,
// regular outbound dials try the anchor list first (bypassing backoff —
// an anchor was good moments ago, and a failed retry evicts it), so a
// node that just lost a peer to churn reconnects to proven addresses
// instead of re-gambling on the mostly-dead gossip mix.
func (n *Node) selectDialTarget(newOnly bool) (wire.NetAddress, bool) {
	if n.pol.anchorsEnabled && !newOnly {
		if na, ok := n.selectAnchor(); ok {
			return na, true
		}
	}
	const tries = 20
	for i := 0; i < tries; i++ {
		na, ok := n.addrman.Select(newOnly)
		if !ok {
			return wire.NetAddress{}, false
		}
		if na.Addr == n.cfg.Self.Addr {
			continue
		}
		if _, connected := n.byAddr[na.Addr]; connected {
			continue
		}
		if _, inFlight := n.dialing[na.Addr]; inFlight {
			continue
		}
		if n.inBackoff(na.Addr) {
			continue
		}
		return na, true
	}
	return wire.NetAddress{}, false
}

// selectAnchor returns the oldest anchor not already connected or being
// dialed. Anchors are kept in confirmation order, so the scan is
// deterministic.
func (n *Node) selectAnchor() (wire.NetAddress, bool) {
	for _, a := range n.anchors {
		if a == n.cfg.Self.Addr {
			continue
		}
		if _, connected := n.byAddr[a]; connected {
			continue
		}
		if _, inFlight := n.dialing[a]; inFlight {
			continue
		}
		return wire.NetAddress{
			Addr: a, Services: wire.SFNodeNetwork, Timestamp: n.env.Now(),
		}, true
	}
	return wire.NetAddress{}, false
}

// noteAnchor records a confirmed-good outbound peer, moving a repeat to
// the back (most recently confirmed) and bounding the list.
func (n *Node) noteAnchor(a netip.AddrPort) {
	n.dropAnchor(a)
	n.anchors = append(n.anchors, a)
	if len(n.anchors) > maxAnchors {
		n.anchors = n.anchors[len(n.anchors)-maxAnchors:]
	}
}

// dropAnchor removes an address from the anchor list (dial failure: the
// anchor has churned away and must not be retried forever).
func (n *Node) dropAnchor(a netip.AddrPort) {
	for i, x := range n.anchors {
		if x == a {
			n.anchors = append(n.anchors[:i], n.anchors[i+1:]...)
			return
		}
	}
}

// startDial records the attempt and hands the dial to the environment.
func (n *Node) startDial(na wire.NetAddress, dir Direction) {
	n.dialing[na.Addr] = dir
	n.dialStarted[na.Addr] = n.env.Now()
	n.dialAttempts++
	n.met.dialAttempt.Inc()
	n.addrman.Attempt(na.Addr)
	n.emit(Event{
		Type: EvDialAttempt, Node: n.cfg.Self.Addr, Peer: na.Addr,
		Dir: dir, Time: n.env.Now(),
	})
	n.env.Dial(na.Addr)
}

// OnDialResult is invoked by the environment when a dial completes.
func (n *Node) OnDialResult(remote netip.AddrPort, conn ConnID, err error) {
	if n.stopped {
		if err == nil {
			n.env.Disconnect(conn)
		}
		return
	}
	dir, ok := n.dialing[remote]
	if !ok {
		dir = Outbound
	}
	delete(n.dialing, remote)
	started, timed := n.dialStarted[remote]
	delete(n.dialStarted, remote)
	traceDial := func(detail string) {
		if n.tracer == nil || !timed {
			return
		}
		n.tracer.Emit(obs.Event{
			Time: n.env.Now(), Kind: "dial", From: n.cfg.Self.Addr,
			To: remote, Detail: detail, Dur: n.env.Now().Sub(started),
		})
	}
	if err != nil {
		n.met.dialFail.Inc()
		traceDial(err.Error())
		n.emit(Event{
			Type: EvDialFail, Node: n.cfg.Self.Addr, Peer: remote,
			Dir: dir, Time: n.env.Now(), Err: err,
		})
		n.armBackoff(remote)
		if n.pol.anchorsEnabled {
			n.dropAnchor(remote)
		}
		return
	}
	n.clearBackoff(remote)
	n.dialSuccesses++
	n.met.dialSuccess.Inc()
	traceDial("ok")
	n.emit(Event{
		Type: EvDialSuccess, Node: n.cfg.Self.Addr, Peer: remote,
		Dir: dir, Time: n.env.Now(), Conn: conn,
	})
	p := n.addPeer(conn, remote, dir)
	// The initiator speaks first: VERSION.
	n.queueMsg(p, n.versionMsg(), classControl)
}

// OnInbound is invoked by the environment when a remote peer connects.
// It returns false when the connection must be refused (capacity or
// unreachable policy).
func (n *Node) OnInbound(remote netip.AddrPort, conn ConnID) bool {
	if n.stopped || !n.cfg.Reachable {
		return false
	}
	_, inbound, _ := n.ConnCounts()
	if inbound >= n.cfg.MaxInbound {
		n.emit(Event{
			Type: EvInboundRefused, Node: n.cfg.Self.Addr, Peer: remote,
			Time: n.env.Now(),
		})
		return false
	}
	n.addPeer(conn, remote, Inbound)
	n.emit(Event{
		Type: EvConnOpen, Node: n.cfg.Self.Addr, Peer: remote,
		Dir: Inbound, Time: n.env.Now(), Conn: conn,
	})
	return true
}

// OnDisconnect is invoked by the environment when a connection closes.
func (n *Node) OnDisconnect(conn ConnID) {
	p := n.peerByConn(conn)
	if p == nil {
		return
	}
	n.removePeer(p)
	n.emit(Event{
		Type: EvConnClose, Node: n.cfg.Self.Addr, Peer: p.addr,
		Dir: p.dir, Time: n.env.Now(), Conn: conn,
	})
	// Blocks requested from this peer will never arrive; clear them so
	// they can be re-requested from another peer at the next header sync.
	n.clearInFlight(conn)
	// A dropped outbound connection frees a slot: try to refill promptly
	// rather than waiting out the idle maintenance interval.
	if p.dir == Outbound && !n.stopped {
		n.scheduleMaintenance(0)
	}
}

// OnMessage is invoked by the environment when a message arrives on conn.
// The message is queued into the peer's vProcessMsg equivalent and
// handled by the round-robin pump.
func (n *Node) OnMessage(conn ConnID, msg wire.Message) {
	if n.stopped {
		return
	}
	p := n.peerByConn(conn)
	if p == nil {
		return
	}
	p.lastRecv = n.env.Now()
	p.pushRecv(msg)
	n.pending++
	n.armPump()
}

// peerByConn resolves a connection ID to its peer, or nil.
func (n *Node) peerByConn(conn ConnID) *Peer {
	if i, ok := n.slotOf[conn]; ok {
		return n.slots[i]
	}
	return nil
}

// addPeer registers a connection in the next slot (arrival order is the
// round-robin order).
func (n *Node) addPeer(conn ConnID, remote netip.AddrPort, dir Direction) *Peer {
	p := &Peer{
		id:        conn,
		addr:      remote,
		dir:       dir,
		connected: n.env.Now(),
		knownInv:  make(map[chainhash.Hash]struct{}),
	}
	n.slotOf[conn] = int32(len(n.slots))
	n.slots = append(n.slots, p)
	n.byAddr[remote] = p
	switch dir {
	case Outbound:
		n.nOutbound++
	case Inbound:
		n.nInbound++
	case Feeler:
		n.nFeelers++
	}
	return p
}

// removePeer unregisters a connection, leaving a nil hole so slot indices
// stay stable for an in-progress pump iteration.
func (n *Node) removePeer(p *Peer) {
	i, ok := n.slotOf[p.id]
	if !ok || n.slots[i] != p {
		return
	}
	n.pending -= p.recvLen() + p.queueLen()
	n.slots[i] = nil
	n.slotHoles++
	delete(n.slotOf, p.id)
	if n.byAddr[p.addr] == p {
		delete(n.byAddr, p.addr)
	}
	switch p.dir {
	case Outbound:
		n.nOutbound--
	case Inbound:
		n.nInbound--
	case Feeler:
		n.nFeelers--
	}
	n.maybeCompactSlots()
}

// maybeCompactSlots squeezes nil holes out of the slot array once they
// outnumber live peers. It never runs while the pump is iterating: slot
// indices must stay stable within one pump pass.
func (n *Node) maybeCompactSlots() {
	if n.inPump || n.slotHoles == 0 || n.slotHoles*2 < len(n.slots) {
		return
	}
	live := n.slots[:0]
	for _, p := range n.slots {
		if p != nil {
			n.slotOf[p.id] = int32(len(live))
			live = append(live, p)
		}
	}
	for i := len(live); i < len(n.slots); i++ {
		n.slots[i] = nil
	}
	n.slots = live
	n.slotHoles = 0
}

// versionMsg builds this node's VERSION message.
func (n *Node) versionMsg() *wire.MsgVersion {
	return &wire.MsgVersion{
		ProtocolVersion: wire.ProtocolVersion,
		Services:        n.cfg.Self.Services,
		Timestamp:       n.env.Now(),
		AddrMe:          n.cfg.Self,
		Nonce:           n.env.Rand().Uint64(),
		UserAgent:       n.cfg.UserAgent,
		StartHeight:     n.chain.Height(),
		Relay:           true,
	}
}
