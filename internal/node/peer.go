package node

import (
	"net/netip"
	"time"

	"repro/internal/chainhash"
	"repro/internal/wire"
)

// msgClass labels queued outbound messages for the relay-policy
// scheduler.
type msgClass int

const (
	// classControl covers handshake and keepalive traffic.
	classControl msgClass = iota + 1
	// classAddr covers ADDR/GETADDR gossip.
	classAddr
	// classTx covers transaction announcements and bodies.
	classTx
	// classBlock covers block announcements and bodies — the class the
	// §V refinement prioritizes.
	classBlock
)

// outMsg is one entry of a peer's vSendMsg queue.
type outMsg struct {
	msg      wire.Message
	class    msgClass
	enqueued time.Time
	// relayMark carries the object hash for relay-delay instrumentation
	// (zero when not a tracked relay).
	relayMark chainhash.Hash
	// recvAt is when the relayed object was originally received, for
	// relay-delay events.
	recvAt time.Time
}

// Peer is the node-side state of one connection, mirroring Bitcoin Core's
// CNode: the vProcessMsg receive queue, the vSendMsg send queue, and the
// relay bookkeeping.
type Peer struct {
	id        ConnID
	addr      netip.AddrPort
	dir       Direction
	connected time.Time

	// Handshake state.
	versionReceived bool
	verackReceived  bool
	handshook       bool
	startHeight     int32
	userAgent       string

	// recvQ is the vProcessMsg equivalent: inbound messages awaiting the
	// message-handler loop. recvHead indexes the next message (popping
	// advances the head instead of shifting, keeping pops O(1)).
	recvQ    []wire.Message
	recvHead int
	// sendQ is the vSendMsg equivalent: outbound messages awaiting the
	// socket-handler loop, with the same head-index scheme.
	sendQ    []outMsg
	sendHead int

	// knownInv tracks object hashes this peer is known to have, to avoid
	// redundant announcements.
	knownInv map[chainhash.Hash]struct{}

	// wantsCmpct reports whether the peer negotiated BIP-152 relay.
	wantsCmpct bool

	// getAddrSent ensures a single GETADDR per outbound connection.
	getAddrSent bool
	// addrResponded limits GETADDR responses (Bitcoin Core answers once).
	addrResponded bool

	// lastRecv is when the last message arrived, driving the keepalive
	// idle check (Bitcoin Core's nLastRecv).
	lastRecv time.Time
	// pingNonce and pingSent track the outstanding keepalive PING: a
	// matching PONG clears them, and an unanswered PING older than the
	// stall timeout evicts the peer. pingNonce is zero when no PING is
	// outstanding.
	pingNonce uint64
	pingSent  time.Time
}

// Addr returns the peer's remote address.
func (p *Peer) Addr() netip.AddrPort { return p.addr }

// Dir returns the connection direction.
func (p *Peer) Dir() Direction { return p.dir }

// Handshook reports whether the VERSION/VERACK exchange completed.
func (p *Peer) Handshook() bool { return p.handshook }

// markKnown records that the peer has (or was sent) the object.
// The map is bounded: once it grows past maxKnownInv it is reset, which
// only costs an occasional duplicate announcement.
func (p *Peer) markKnown(h chainhash.Hash) {
	const maxKnownInv = 8192
	if len(p.knownInv) >= maxKnownInv {
		p.knownInv = make(map[chainhash.Hash]struct{}, maxKnownInv/4)
	}
	p.knownInv[h] = struct{}{}
}

// knows reports whether the peer is known to have the object.
func (p *Peer) knows(h chainhash.Hash) bool {
	_, ok := p.knownInv[h]
	return ok
}

// queueLen returns the depth of the peer's send queue.
func (p *Peer) queueLen() int { return len(p.sendQ) - p.sendHead }

// recvLen returns the depth of the peer's receive queue.
func (p *Peer) recvLen() int { return len(p.recvQ) - p.recvHead }

// pushRecv appends an inbound message.
func (p *Peer) pushRecv(msg wire.Message) { p.recvQ = append(p.recvQ, msg) }

// popRecv removes and returns the oldest inbound message.
func (p *Peer) popRecv() wire.Message {
	msg := p.recvQ[p.recvHead]
	p.recvQ[p.recvHead] = nil
	p.recvHead++
	if p.recvHead == len(p.recvQ) {
		p.recvQ = p.recvQ[:0]
		p.recvHead = 0
	}
	return msg
}

// pushSend appends an outbound message.
func (p *Peer) pushSend(out outMsg) { p.sendQ = append(p.sendQ, out) }

// popSend removes and returns the oldest outbound message.
func (p *Peer) popSend() outMsg {
	out := p.sendQ[p.sendHead]
	p.sendQ[p.sendHead] = outMsg{}
	p.sendHead++
	if p.sendHead == len(p.sendQ) {
		p.sendQ = p.sendQ[:0]
		p.sendHead = 0
	}
	return out
}

// insertSendPriority inserts out after any existing classBlock entries at
// the front of the send queue (the §V priority-relay placement).
func (p *Peer) insertSendPriority(out outMsg) {
	insert := p.sendHead
	for insert < len(p.sendQ) && p.sendQ[insert].class == classBlock {
		insert++
	}
	p.sendQ = append(p.sendQ, outMsg{})
	copy(p.sendQ[insert+1:], p.sendQ[insert:])
	p.sendQ[insert] = out
}
