package node

import (
	"net/netip"
	"time"

	"repro/internal/chainhash"
)

// EventType enumerates instrumentation events.
type EventType int

// Instrumentation event types. Analyses subscribe to these to produce the
// paper's figures.
const (
	// EvStarted fires when the node starts.
	EvStarted EventType = iota + 1
	// EvStopped fires when the node stops.
	EvStopped
	// EvDialAttempt fires for every outbound connection attempt — the
	// Figure 7 denominator.
	EvDialAttempt
	// EvDialSuccess fires when a dial completes — the Figure 7 numerator.
	EvDialSuccess
	// EvDialFail fires when a dial fails.
	EvDialFail
	// EvConnOpen fires when a connection is established (either side).
	EvConnOpen
	// EvConnClose fires when a connection closes.
	EvConnClose
	// EvInboundRefused fires when an inbound connection is turned away.
	EvInboundRefused
	// EvHandshake fires when VERSION/VERACK completes.
	EvHandshake
	// EvAddrReceived fires for every received ADDR message.
	EvAddrReceived
	// EvTxReceived fires when a transaction first enters the mempool.
	EvTxReceived
	// EvTxRelayed fires when a transaction announcement leaves for a
	// peer; Delay carries receive-to-relay latency (Figure 11).
	EvTxRelayed
	// EvBlockReceived fires when a block is first received and accepted.
	EvBlockReceived
	// EvBlockRelayed fires when a block announcement leaves for a peer;
	// Delay carries receive-to-relay latency (Figure 10).
	EvBlockRelayed
	// EvBlockMined fires when this node produces a block.
	EvBlockMined
	// EvSyncDone fires when initial block download completes.
	EvSyncDone
	// EvPeerStalled fires when a peer is evicted because its keepalive
	// PING went unanswered past the stall timeout.
	EvPeerStalled
	// EvBlockStalled fires when a peer is evicted for sitting on a
	// requested block past the block-stall timeout; Hash carries the
	// stalled block.
	EvBlockStalled
	// EvHandshakeTimeout fires when a peer is evicted for failing to
	// complete VERSION/VERACK in time.
	EvHandshakeTimeout
	// EvDialBackoff fires when a failed dial arms (or extends) the
	// per-address reconnect backoff; Delay carries the backoff duration
	// and Count the consecutive-failure count.
	EvDialBackoff
)

// String returns the event type name.
func (t EventType) String() string {
	switch t {
	case EvStarted:
		return "started"
	case EvStopped:
		return "stopped"
	case EvDialAttempt:
		return "dial-attempt"
	case EvDialSuccess:
		return "dial-success"
	case EvDialFail:
		return "dial-fail"
	case EvConnOpen:
		return "conn-open"
	case EvConnClose:
		return "conn-close"
	case EvInboundRefused:
		return "inbound-refused"
	case EvHandshake:
		return "handshake"
	case EvAddrReceived:
		return "addr-received"
	case EvTxReceived:
		return "tx-received"
	case EvTxRelayed:
		return "tx-relayed"
	case EvBlockReceived:
		return "block-received"
	case EvBlockRelayed:
		return "block-relayed"
	case EvBlockMined:
		return "block-mined"
	case EvSyncDone:
		return "sync-done"
	case EvPeerStalled:
		return "peer-stalled"
	case EvBlockStalled:
		return "block-stalled"
	case EvHandshakeTimeout:
		return "handshake-timeout"
	case EvDialBackoff:
		return "dial-backoff"
	default:
		return "unknown"
	}
}

// Event is one instrumentation record. Fields beyond Type, Time, and Node
// are populated per type.
type Event struct {
	// Type discriminates the record.
	Type EventType
	// Time is the (virtual) time of the event.
	Time time.Time
	// Node is the reporting node's address.
	Node netip.AddrPort
	// Peer is the remote address, when applicable.
	Peer netip.AddrPort
	// Conn is the connection, when applicable.
	Conn ConnID
	// Dir is the connection direction, when applicable.
	Dir Direction
	// Hash identifies the block or transaction, when applicable.
	Hash chainhash.Hash
	// Delay carries relay latency for EvTxRelayed/EvBlockRelayed.
	Delay time.Duration
	// Count carries ADDR sizes: for EvAddrReceived, the total number of
	// addresses.
	Count int
	// Err carries the failure for EvDialFail.
	Err error
}

// EventSink consumes instrumentation events.
type EventSink interface {
	// OnEvent receives one event. Implementations must not retain
	// pointers into the node and should return quickly.
	OnEvent(ev Event)
}

// SinkFunc adapts a function to the EventSink interface.
type SinkFunc func(ev Event)

// OnEvent implements EventSink.
func (f SinkFunc) OnEvent(ev Event) { f(ev) }

// MultiSink fans events out to several sinks.
type MultiSink []EventSink

// OnEvent implements EventSink.
func (m MultiSink) OnEvent(ev Event) {
	for _, s := range m {
		s.OnEvent(ev)
	}
}
