package node

import (
	"testing"
	"time"

	"repro/internal/chain"
	"repro/internal/wire"
)

// Additional node tests: relay-policy corners, GETADDR chunking, compact
// block reconstruction paths, and the service-time model.

func TestDuplicateVersionIgnored(t *testing.T) {
	env := newFakeEnv()
	n := New(testConfig(mkAddr(10, 0, 0, 1)), env)
	n.Start()
	completeHandshake(t, n, env, 1, mkAddr(10, 0, 0, 2), 0)
	before := len(env.transmitsTo(1))
	n.OnMessage(1, &wire.MsgVersion{Timestamp: env.Now(), StartHeight: 50})
	env.run(time.Second)
	p := n.peerByConn(1)
	if p.startHeight == 50 {
		t.Error("duplicate VERSION overwrote peer state")
	}
	if got := len(env.transmitsTo(1)); got != before {
		t.Error("duplicate VERSION triggered responses")
	}
}

func TestGetAddrResponseChunking(t *testing.T) {
	// More than 1000 known addresses must arrive in multiple ADDR
	// messages, each within the wire cap.
	env := newFakeEnv()
	cfg := testConfig(mkAddr(10, 0, 0, 1))
	// Responder override returns 2500 addresses.
	big := make([]wire.NetAddress, 2500)
	for i := range big {
		big[i] = wire.NetAddress{
			Addr:      mkAddr(20, byte(i/250), byte(i%250), 1),
			Timestamp: env.Now(),
		}
	}
	cfg.GetAddrResponder = func() []wire.NetAddress { return big }
	n := New(cfg, env)
	n.Start()
	completeHandshake(t, n, env, 1, mkAddr(10, 0, 0, 2), 0)
	n.OnMessage(1, &wire.MsgGetAddr{})
	env.run(2 * time.Second)
	var chunks, total int
	for _, m := range env.transmitsTo(1) {
		if am, ok := m.(*wire.MsgAddr); ok {
			chunks++
			total += len(am.AddrList)
			if len(am.AddrList) > wire.MaxAddrPerMsg {
				t.Fatalf("chunk of %d exceeds wire cap", len(am.AddrList))
			}
		}
	}
	// One self-ADDR may not be present here (inbound peers get no
	// self-advertisement), so expect exactly ceil(2500/1000) = 3 chunks.
	if chunks != 3 || total != 2500 {
		t.Errorf("chunks=%d total=%d, want 3/2500", chunks, total)
	}
}

func TestBlockBodyServedOnGetData(t *testing.T) {
	n, env := minedChain(t, 1)
	completeHandshake(t, n, env, 1, mkAddr(10, 0, 0, 2), 0)
	blk, err := n.Chain().BlockByHeight(1)
	if err != nil {
		t.Fatal(err)
	}
	gd := &wire.MsgGetData{}
	gd.InvList = []wire.InvVect{{Type: wire.InvTypeBlock, Hash: blk.BlockHash()}}
	n.OnMessage(1, gd)
	env.run(time.Second)
	var served *wire.MsgBlock
	for _, m := range env.transmitsTo(1) {
		if b, ok := m.(*wire.MsgBlock); ok {
			served = b
		}
	}
	if served == nil || served.BlockHash() != blk.BlockHash() {
		t.Error("block body not served")
	}
}

func TestCompactBlockAnnouncement(t *testing.T) {
	env := newFakeEnv()
	cfg := testConfig(mkAddr(10, 0, 0, 1))
	cfg.CompactBlocks = true
	n := New(cfg, env)
	n.Start()
	completeHandshake(t, n, env, 1, mkAddr(10, 0, 0, 2), 0)
	// Peer negotiates high-bandwidth compact relay.
	n.OnMessage(1, &wire.MsgSendCmpct{Announce: true, Version: 1})
	env.run(time.Second)
	if _, err := n.MineBlock(0); err != nil {
		t.Fatal(err)
	}
	env.run(time.Second)
	var sawCmpct bool
	for _, m := range env.transmitsTo(1) {
		if _, ok := m.(*wire.MsgCmpctBlock); ok {
			sawCmpct = true
		}
	}
	if !sawCmpct {
		t.Error("block not announced via CMPCTBLOCK after negotiation")
	}
}

func TestCmpctBlockReconstructionFromMempool(t *testing.T) {
	env := newFakeEnv()
	cfg := testConfig(mkAddr(10, 0, 0, 1))
	cfg.CompactBlocks = true
	n := New(cfg, env)
	n.Start()
	completeHandshake(t, n, env, 1, mkAddr(10, 0, 0, 2), 0)

	// Build the block remotely: a second node mines with a tx our node
	// already pooled.
	env2 := newFakeEnv()
	miner := New(testConfig(mkAddr(10, 0, 0, 9)), env2)
	miner.Start()
	tx := makeSpendTx(77)
	miner.Mempool().Add(&tx)
	n.Mempool().Add(&tx)
	blk, err := miner.MineBlock(0)
	if err != nil {
		t.Fatal(err)
	}
	cb := chain.BuildCompactBlock(blk, 99)
	n.OnMessage(1, cb)
	env.run(time.Second)
	if n.Chain().Height() != 1 {
		t.Fatalf("height = %d, want 1 (compact reconstruction failed)", n.Chain().Height())
	}
}

func TestCmpctBlockMissingTxTriggersGetBlockTxn(t *testing.T) {
	env := newFakeEnv()
	cfg := testConfig(mkAddr(10, 0, 0, 1))
	cfg.CompactBlocks = true
	n := New(cfg, env)
	n.Start()
	completeHandshake(t, n, env, 1, mkAddr(10, 0, 0, 2), 0)

	env2 := newFakeEnv()
	miner := New(testConfig(mkAddr(10, 0, 0, 9)), env2)
	miner.Start()
	tx := makeSpendTx(88)
	miner.Mempool().Add(&tx) // our node does NOT have it
	blk, err := miner.MineBlock(0)
	if err != nil {
		t.Fatal(err)
	}
	cb := chain.BuildCompactBlock(blk, 7)
	n.OnMessage(1, cb)
	env.run(time.Second)
	var req *wire.MsgGetBlockTxn
	for _, m := range env.transmitsTo(1) {
		if g, ok := m.(*wire.MsgGetBlockTxn); ok {
			req = g
		}
	}
	if req == nil {
		t.Fatal("missing tx did not trigger GETBLOCKTXN")
	}
	// Answer it and confirm the block completes.
	resp, err := chain.BlockTxnFor(blk, req)
	if err != nil {
		t.Fatal(err)
	}
	n.OnMessage(1, resp)
	env.run(time.Second)
	if n.Chain().Height() != 1 {
		t.Errorf("height = %d, want 1 after BLOCKTXN", n.Chain().Height())
	}
}

// makeSpendTx builds a distinct non-coinbase transaction.
func makeSpendTx(seed byte) wire.MsgTx {
	return wire.MsgTx{
		Version: 2,
		TxIn: []wire.TxIn{{
			PreviousOutPoint: wire.OutPoint{Index: uint32(seed)},
			SignatureScript:  []byte{seed, seed + 1},
			Sequence:         0xfffffffe,
		}},
		TxOut: []wire.TxOut{{Value: int64(seed) * 100, PkScript: []byte{0x51}}},
	}
}

func TestSizeEstimateOrdering(t *testing.T) {
	env := newFakeEnv()
	n := New(testConfig(mkAddr(10, 0, 0, 1)), env)
	blk := &wire.MsgBlock{Header: wire.BlockHeader{Version: 4}}
	inv := &wire.MsgInv{}
	inv.InvList = []wire.InvVect{{Type: wire.InvTypeBlock}}
	// A full block must be estimated far larger than an INV, and at
	// least the synthetic block size hint.
	if n.sizeEstimate(blk) < n.cfg.BlockSizeHint {
		t.Error("block size below the hint")
	}
	if n.sizeEstimate(inv) >= n.sizeEstimate(blk) {
		t.Error("INV estimated larger than a block")
	}
	cb := &wire.MsgCmpctBlock{ShortIDs: make([]wire.ShortID, 100)}
	if n.sizeEstimate(cb) >= n.sizeEstimate(blk) {
		t.Error("compact block estimated larger than a full block")
	}
	if n.sendTime(blk) <= n.sendTime(inv) {
		t.Error("block send time not above INV send time")
	}
}

func TestPumpDrainsBacklogEventually(t *testing.T) {
	env := newFakeEnv()
	n := New(testConfig(mkAddr(10, 0, 0, 1)), env)
	n.Start()
	completeHandshake(t, n, env, 1, mkAddr(10, 0, 0, 2), 0)
	// Flood the node with pings; every one must eventually be ponged,
	// one per pump loop.
	const pings = 200
	for i := 0; i < pings; i++ {
		n.OnMessage(1, &wire.MsgPing{Nonce: uint64(i)})
	}
	env.run(time.Minute)
	pongs := 0
	for _, m := range env.transmitsTo(1) {
		if _, ok := m.(*wire.MsgPong); ok {
			pongs++
		}
	}
	if pongs != pings {
		t.Errorf("pongs = %d, want %d", pongs, pings)
	}
	if n.hasPendingWork() {
		t.Error("pending work remains after drain")
	}
}

func TestPeerAddrsFiltering(t *testing.T) {
	env := newFakeEnv()
	n := New(testConfig(mkAddr(10, 0, 0, 1)), env)
	n.Start()
	completeHandshake(t, n, env, 1, mkAddr(10, 0, 1, 1), 0)
	completeHandshake(t, n, env, 2, mkAddr(10, 0, 1, 2), 0)
	if got := len(n.PeerAddrs(0)); got != 2 {
		t.Errorf("all peers = %d, want 2", got)
	}
	if got := len(n.PeerAddrs(Inbound)); got != 2 {
		t.Errorf("inbound peers = %d, want 2", got)
	}
	if got := len(n.PeerAddrs(Outbound)); got != 0 {
		t.Errorf("outbound peers = %d, want 0", got)
	}
}

func TestAnnounceSkipsKnowingPeers(t *testing.T) {
	env := newFakeEnv()
	n := New(testConfig(mkAddr(10, 0, 0, 1)), env)
	n.Start()
	completeHandshake(t, n, env, 1, mkAddr(10, 0, 1, 1), 0)
	blk, err := n.MineBlock(0)
	if err != nil {
		t.Fatal(err)
	}
	env.run(time.Second)
	count := func() int {
		c := 0
		for _, m := range env.transmitsTo(1) {
			if iv, ok := m.(*wire.MsgInv); ok {
				for _, v := range iv.InvList {
					if v.Hash == blk.BlockHash() {
						c++
					}
				}
			}
		}
		return c
	}
	first := count()
	if first != 1 {
		t.Fatalf("announcements = %d, want 1", first)
	}
	// Re-announcing (e.g. via a second acceptAndRelay path) must not
	// duplicate: the peer is marked as knowing the block.
	n.announceBlock(blk, 0, env.Now())
	env.run(time.Second)
	if got := count(); got != first {
		t.Errorf("announcements after re-announce = %d, want %d", got, first)
	}
}

func TestNegativeMaxFeelersDisablesFeelers(t *testing.T) {
	env := newFakeEnv()
	cfg := testConfig(mkAddr(10, 0, 0, 1))
	cfg.MaxOutbound = -1
	cfg.MaxFeelers = -1
	cfg.FeelerInterval = time.Second
	cfg.SeedAddrs = []wire.NetAddress{{Addr: mkAddr(10, 0, 0, 2), Timestamp: env.Now()}}
	n := New(cfg, env)
	n.Start()
	env.run(10 * time.Second)
	if len(env.dials) != 0 {
		t.Errorf("dials = %d, want 0 with both loops disabled", len(env.dials))
	}
}
