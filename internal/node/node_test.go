package node

import (
	"container/heap"
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"repro/internal/chain"
	"repro/internal/chainhash"
	"repro/internal/wire"
)

// fakeEnv is a minimal deterministic Env for driving a single node in
// isolation. It records dials and transmissions and executes scheduled
// callbacks from a tiny event loop.
type fakeEnv struct {
	now time.Time
	rng *rand.Rand

	dials     []netip.AddrPort
	transmits []transmitRec
	closed    []ConnID

	// discard stops Transmit from recording messages; recycle, when also
	// set, receives each transmitted message instead. Benchmarks use the
	// pair to model an environment that fully consumes messages at
	// Transmit time (the node.RecycleOutbound contract) so the steady
	// state allocates nothing.
	discard bool
	recycle func(wire.Message)

	q    fakeHeap
	free []*fakeEvent
	seq  uint64
}

type transmitRec struct {
	conn  ConnID
	msg   wire.Message
	delay time.Duration
	at    time.Time
}

type fakeEvent struct {
	at  time.Time
	seq uint64
	fn  func()
}

type fakeHeap []*fakeEvent

func (h fakeHeap) Len() int { return len(h) }
func (h fakeHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h fakeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *fakeHeap) Push(x any)   { *h = append(*h, x.(*fakeEvent)) }
func (h *fakeHeap) Pop() any     { old := *h; n := len(old); ev := old[n-1]; *h = old[:n-1]; return ev }
func newFakeEnv() *fakeEnv {
	return &fakeEnv{now: time.Unix(1586000000, 0).UTC(), rng: rand.New(rand.NewSource(1))}
}
func (e *fakeEnv) Now() time.Time        { return e.now }
func (e *fakeEnv) Rand() *rand.Rand      { return e.rng }
func (e *fakeEnv) Dial(r netip.AddrPort) { e.dials = append(e.dials, r) }
func (e *fakeEnv) Disconnect(c ConnID)   { e.closed = append(e.closed, c) }

func (e *fakeEnv) Schedule(d time.Duration, fn func()) {
	e.seq++
	var ev *fakeEvent
	if k := len(e.free); k > 0 {
		ev = e.free[k-1]
		e.free = e.free[:k-1]
	} else {
		ev = new(fakeEvent)
	}
	ev.at, ev.seq, ev.fn = e.now.Add(d), e.seq, fn
	heap.Push(&e.q, ev)
}

func (e *fakeEnv) Transmit(conn ConnID, msg wire.Message, delay time.Duration) {
	if e.discard {
		if e.recycle != nil {
			e.recycle(msg)
		}
		return
	}
	e.transmits = append(e.transmits, transmitRec{
		conn: conn, msg: msg, delay: delay, at: e.now.Add(delay),
	})
}

// run executes scheduled callbacks until the queue is empty or the
// deadline passes.
func (e *fakeEnv) run(until time.Duration) {
	deadline := e.now.Add(until)
	for len(e.q) > 0 {
		next := e.q[0]
		if next.at.After(deadline) {
			break
		}
		heap.Pop(&e.q)
		e.now = next.at
		fn := next.fn
		next.fn = nil
		e.free = append(e.free, next)
		fn()
	}
	if e.now.Before(deadline) {
		e.now = deadline
	}
}

// transmitsTo returns the messages sent on conn, in order.
func (e *fakeEnv) transmitsTo(conn ConnID) []wire.Message {
	var out []wire.Message
	for _, tr := range e.transmits {
		if tr.conn == conn {
			out = append(out, tr.msg)
		}
	}
	return out
}

var testGenesis = chain.GenesisBlock("node-test")

func testConfig(self netip.AddrPort) Config {
	return Config{
		Self:      wire.NetAddress{Addr: self, Services: wire.SFNodeNetwork},
		Reachable: true,
		Genesis:   testGenesis,
	}
}

func mkAddr(a, b, c, d byte) netip.AddrPort {
	return netip.AddrPortFrom(netip.AddrFrom4([4]byte{a, b, c, d}), 8333)
}

// completeHandshake drives an inbound peer through VERSION/VERACK on the
// given conn and returns after the handshake completes.
func completeHandshake(t *testing.T, n *Node, env *fakeEnv, conn ConnID, peer netip.AddrPort, height int32) {
	t.Helper()
	if !n.OnInbound(peer, conn) {
		t.Fatalf("inbound connection from %v refused", peer)
	}
	n.OnMessage(conn, &wire.MsgVersion{
		ProtocolVersion: wire.ProtocolVersion,
		Timestamp:       env.Now(),
		UserAgent:       "/peer/",
		StartHeight:     height,
		Relay:           true,
	})
	n.OnMessage(conn, &wire.MsgVerAck{})
	env.run(5 * time.Second)
	p := n.peerByConn(conn)
	if p == nil || !p.handshook {
		t.Fatalf("handshake with %v did not complete", peer)
	}
}

func TestNewRequiresGenesis(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New without genesis must panic")
		}
	}()
	New(Config{}, newFakeEnv())
}

func TestStartSeedsAddrman(t *testing.T) {
	env := newFakeEnv()
	cfg := testConfig(mkAddr(10, 0, 0, 1))
	cfg.SeedAddrs = []wire.NetAddress{
		{Addr: mkAddr(10, 0, 0, 2), Timestamp: env.Now()},
		{Addr: mkAddr(10, 0, 0, 3), Timestamp: env.Now()},
	}
	n := New(cfg, env)
	n.Start()
	if n.AddrMan().Size() != 2 {
		t.Errorf("addrman size = %d, want 2", n.AddrMan().Size())
	}
}

func TestConnectionMaintenanceDials(t *testing.T) {
	env := newFakeEnv()
	cfg := testConfig(mkAddr(10, 0, 0, 1))
	cfg.SeedAddrs = []wire.NetAddress{
		{Addr: mkAddr(10, 0, 0, 2), Timestamp: env.Now()},
	}
	n := New(cfg, env)
	n.Start()
	env.run(3 * time.Second)
	if len(env.dials) == 0 {
		t.Fatal("maintenance loop never dialed the seed")
	}
	if env.dials[0] != mkAddr(10, 0, 0, 2) {
		t.Errorf("dialed %v, want the seed", env.dials[0])
	}
	attempts, _ := n.DialStats()
	if attempts == 0 {
		t.Error("attempts not counted")
	}
}

func TestNodeNeverDialsSelf(t *testing.T) {
	env := newFakeEnv()
	self := mkAddr(10, 0, 0, 1)
	cfg := testConfig(self)
	cfg.SeedAddrs = []wire.NetAddress{{Addr: self, Timestamp: env.Now()}}
	n := New(cfg, env)
	n.Start()
	env.run(10 * time.Second)
	for _, d := range env.dials {
		if d == self {
			t.Fatal("node dialed itself")
		}
	}
}

func TestOutboundHandshakeSequence(t *testing.T) {
	env := newFakeEnv()
	cfg := testConfig(mkAddr(10, 0, 0, 1))
	cfg.SeedAddrs = []wire.NetAddress{{Addr: mkAddr(10, 0, 0, 2), Timestamp: env.Now()}}
	n := New(cfg, env)
	n.Start()
	env.run(2 * time.Second)
	if len(env.dials) == 0 {
		t.Fatal("no dial")
	}
	peer := env.dials[0]
	n.OnDialResult(peer, 1, nil)
	env.run(time.Second)
	// Initiator speaks first: VERSION must be the first transmission.
	msgs := env.transmitsTo(1)
	if len(msgs) == 0 {
		t.Fatal("nothing transmitted after dial success")
	}
	if _, ok := msgs[0].(*wire.MsgVersion); !ok {
		t.Fatalf("first message = %T, want *MsgVersion", msgs[0])
	}
	// Complete the handshake from the remote side.
	n.OnMessage(1, &wire.MsgVersion{Timestamp: env.Now(), StartHeight: 0})
	n.OnMessage(1, &wire.MsgVerAck{})
	env.run(2 * time.Second)
	// After handshake on an outbound connection: VERACK, GETADDR and
	// self-ADDR must have gone out, and the peer must be in tried.
	var sawVerack, sawGetAddr, sawSelfAddr bool
	for _, m := range env.transmitsTo(1) {
		switch mm := m.(type) {
		case *wire.MsgVerAck:
			sawVerack = true
		case *wire.MsgGetAddr:
			sawGetAddr = true
		case *wire.MsgAddr:
			if len(mm.AddrList) == 1 && mm.AddrList[0].Addr == cfg.Self.Addr {
				sawSelfAddr = true
			}
		}
	}
	if !sawVerack || !sawGetAddr || !sawSelfAddr {
		t.Errorf("handshake follow-up missing: verack=%v getaddr=%v selfaddr=%v",
			sawVerack, sawGetAddr, sawSelfAddr)
	}
	if !n.AddrMan().InTried(peer) {
		t.Error("outbound peer not promoted to tried")
	}
}

func TestInboundRefusedWhenUnreachable(t *testing.T) {
	env := newFakeEnv()
	cfg := testConfig(mkAddr(10, 0, 0, 1))
	cfg.Reachable = false
	n := New(cfg, env)
	n.Start()
	if n.OnInbound(mkAddr(10, 0, 0, 2), 1) {
		t.Error("unreachable node accepted an inbound connection")
	}
}

func TestInboundCapacity(t *testing.T) {
	env := newFakeEnv()
	cfg := testConfig(mkAddr(10, 0, 0, 1))
	cfg.MaxInbound = 2
	n := New(cfg, env)
	n.Start()
	if !n.OnInbound(mkAddr(10, 0, 0, 2), 1) || !n.OnInbound(mkAddr(10, 0, 0, 3), 2) {
		t.Fatal("first two inbound connections refused")
	}
	if n.OnInbound(mkAddr(10, 0, 0, 4), 3) {
		t.Error("inbound connection beyond capacity accepted")
	}
}

func TestGetAddrAnsweredOnce(t *testing.T) {
	env := newFakeEnv()
	n := New(testConfig(mkAddr(10, 0, 0, 1)), env)
	n.Start()
	completeHandshake(t, n, env, 1, mkAddr(10, 0, 0, 2), 0)
	before := len(env.transmitsTo(1))
	n.OnMessage(1, &wire.MsgGetAddr{})
	env.run(time.Second)
	afterFirst := len(env.transmitsTo(1))
	if afterFirst <= before {
		t.Fatal("first GETADDR got no response")
	}
	n.OnMessage(1, &wire.MsgGetAddr{})
	env.run(time.Second)
	if got := len(env.transmitsTo(1)); got != afterFirst {
		t.Error("second GETADDR was answered; Bitcoin Core answers once")
	}
}

func TestGetAddrResponseIncludesSelf(t *testing.T) {
	env := newFakeEnv()
	n := New(testConfig(mkAddr(10, 0, 0, 1)), env)
	n.Start()
	completeHandshake(t, n, env, 1, mkAddr(10, 0, 0, 2), 0)
	n.OnMessage(1, &wire.MsgGetAddr{})
	env.run(time.Second)
	found := false
	for _, m := range env.transmitsTo(1) {
		if am, ok := m.(*wire.MsgAddr); ok {
			for _, a := range am.AddrList {
				if a.Addr == mkAddr(10, 0, 0, 1) {
					found = true
				}
			}
		}
	}
	if !found {
		t.Error("ADDR response does not include the node's own address")
	}
}

func TestPingPong(t *testing.T) {
	env := newFakeEnv()
	n := New(testConfig(mkAddr(10, 0, 0, 1)), env)
	n.Start()
	completeHandshake(t, n, env, 1, mkAddr(10, 0, 0, 2), 0)
	n.OnMessage(1, &wire.MsgPing{Nonce: 777})
	env.run(time.Second)
	var pong *wire.MsgPong
	for _, m := range env.transmitsTo(1) {
		if p, ok := m.(*wire.MsgPong); ok {
			pong = p
		}
	}
	if pong == nil || pong.Nonce != 777 {
		t.Errorf("pong = %+v, want nonce 777", pong)
	}
}

func TestAddrIngestion(t *testing.T) {
	env := newFakeEnv()
	n := New(testConfig(mkAddr(10, 0, 0, 1)), env)
	n.Start()
	completeHandshake(t, n, env, 1, mkAddr(10, 0, 0, 2), 0)
	n.OnMessage(1, &wire.MsgAddr{AddrList: []wire.NetAddress{
		{Addr: mkAddr(172, 16, 0, 1), Timestamp: env.Now()},
		{Addr: mkAddr(172, 17, 0, 1), Timestamp: env.Now()},
	}})
	env.run(time.Second)
	if !n.AddrMan().Have(mkAddr(172, 16, 0, 1)) || !n.AddrMan().Have(mkAddr(172, 17, 0, 1)) {
		t.Error("gossiped addresses not ingested")
	}
}

func TestTxInvGetDataFlow(t *testing.T) {
	env := newFakeEnv()
	n := New(testConfig(mkAddr(10, 0, 0, 1)), env)
	n.Start()
	completeHandshake(t, n, env, 1, mkAddr(10, 0, 0, 2), 0)

	tx := &wire.MsgTx{Version: 2, TxOut: []wire.TxOut{{Value: 1, PkScript: []byte{0x51}}}}
	h := tx.TxHash()
	inv := &wire.MsgInv{}
	inv.InvList = []wire.InvVect{{Type: wire.InvTypeTx, Hash: h}}
	n.OnMessage(1, inv)
	env.run(time.Second)
	// Node must request the unknown tx.
	var requested bool
	for _, m := range env.transmitsTo(1) {
		if gd, ok := m.(*wire.MsgGetData); ok {
			for _, iv := range gd.InvList {
				if iv.Hash == h {
					requested = true
				}
			}
		}
	}
	if !requested {
		t.Fatal("tx INV did not trigger GETDATA")
	}
	n.OnMessage(1, tx)
	env.run(time.Second)
	if !n.Mempool().Have(h) {
		t.Error("tx not in mempool after delivery")
	}
	// A second INV for the same tx must not re-request.
	before := len(env.transmitsTo(1))
	n.OnMessage(1, inv)
	env.run(time.Second)
	if got := len(env.transmitsTo(1)); got != before {
		t.Error("known tx INV triggered another GETDATA")
	}
}

func TestTxRelayToOtherPeers(t *testing.T) {
	env := newFakeEnv()
	n := New(testConfig(mkAddr(10, 0, 0, 1)), env)
	n.Start()
	completeHandshake(t, n, env, 1, mkAddr(10, 0, 0, 2), 0)
	completeHandshake(t, n, env, 2, mkAddr(10, 0, 0, 3), 0)

	tx := &wire.MsgTx{Version: 2, TxOut: []wire.TxOut{{Value: 2, PkScript: []byte{0x51}}}}
	n.OnMessage(1, tx) // unsolicited tx delivery is accepted
	env.run(time.Second)
	// Peer 2 must receive an INV for the tx; peer 1 (the source) must not.
	h := tx.TxHash()
	sawOn2, sawOn1 := false, false
	for _, conn := range []ConnID{1, 2} {
		for _, m := range env.transmitsTo(conn) {
			if iv, ok := m.(*wire.MsgInv); ok {
				for _, v := range iv.InvList {
					if v.Hash == h && v.Type == wire.InvTypeTx {
						if conn == 1 {
							sawOn1 = true
						} else {
							sawOn2 = true
						}
					}
				}
			}
		}
	}
	if !sawOn2 {
		t.Error("tx not announced to the other peer")
	}
	if sawOn1 {
		t.Error("tx announced back to its source")
	}
}

// minedChain builds a miner node with `blocks` mined on top of genesis and
// returns it with its env.
func minedChain(t *testing.T, blocks int) (*Node, *fakeEnv) {
	t.Helper()
	env := newFakeEnv()
	n := New(testConfig(mkAddr(10, 0, 0, 1)), env)
	n.Start()
	for i := 0; i < blocks; i++ {
		if _, err := n.MineBlock(0); err != nil {
			t.Fatalf("mine %d: %v", i, err)
		}
	}
	return n, env
}

func TestMineBlockExtendsChain(t *testing.T) {
	n, _ := minedChain(t, 3)
	if got := n.Chain().Height(); got != 3 {
		t.Errorf("height = %d, want 3", got)
	}
}

func TestBlockAnnouncedToPeers(t *testing.T) {
	env := newFakeEnv()
	n := New(testConfig(mkAddr(10, 0, 0, 1)), env)
	n.Start()
	completeHandshake(t, n, env, 1, mkAddr(10, 0, 0, 2), 0)
	blk, err := n.MineBlock(0)
	if err != nil {
		t.Fatal(err)
	}
	env.run(time.Second)
	h := blk.BlockHash()
	found := false
	for _, m := range env.transmitsTo(1) {
		if iv, ok := m.(*wire.MsgInv); ok {
			for _, v := range iv.InvList {
				if v.Type == wire.InvTypeBlock && v.Hash == h {
					found = true
				}
			}
		}
	}
	if !found {
		t.Error("mined block not announced to peer")
	}
}

func TestGetHeadersServed(t *testing.T) {
	n, env := minedChain(t, 4)
	completeHandshake(t, n, env, 1, mkAddr(10, 0, 0, 2), 0)
	n.OnMessage(1, &wire.MsgGetHeaders{
		ProtocolVersion:    wire.ProtocolVersion,
		BlockLocatorHashes: []chainhash.Hash{testGenesis.BlockHash()},
	})
	env.run(time.Second)
	var hdrs *wire.MsgHeaders
	for _, m := range env.transmitsTo(1) {
		if hm, ok := m.(*wire.MsgHeaders); ok {
			hdrs = hm
		}
	}
	if hdrs == nil {
		t.Fatal("no HEADERS response")
	}
	if len(hdrs.Headers) != 4 {
		t.Errorf("headers = %d, want 4", len(hdrs.Headers))
	}
}

func TestRoundRobinLastPeerDelay(t *testing.T) {
	// With k peers and the round-robin pump, a block announcement reaches
	// the last peer's socket strictly later than the first peer's — the
	// §IV-C effect.
	env := newFakeEnv()
	cfg := testConfig(mkAddr(10, 0, 0, 1))
	cfg.RelayPolicy = RoundRobin
	n := New(cfg, env)
	n.Start()
	const peers = 10
	for i := 0; i < peers; i++ {
		completeHandshake(t, n, env, ConnID(i+1), mkAddr(10, 0, 1, byte(i+1)), 0)
	}
	env.transmits = nil
	if _, err := n.MineBlock(0); err != nil {
		t.Fatal(err)
	}
	env.run(10 * time.Second)

	first, last := time.Time{}, time.Time{}
	count := 0
	for _, tr := range env.transmits {
		if iv, ok := tr.msg.(*wire.MsgInv); ok && len(iv.InvList) == 1 &&
			iv.InvList[0].Type == wire.InvTypeBlock {
			count++
			if first.IsZero() || tr.at.Before(first) {
				first = tr.at
			}
			if tr.at.After(last) {
				last = tr.at
			}
		}
	}
	if count != peers {
		t.Fatalf("block announced to %d peers, want %d", count, peers)
	}
	if !last.After(first) {
		t.Error("round-robin should spread announcements over time")
	}
}

func TestBroadcastPolicyDeliversSimultaneously(t *testing.T) {
	env := newFakeEnv()
	cfg := testConfig(mkAddr(10, 0, 0, 1))
	cfg.RelayPolicy = Broadcast
	n := New(cfg, env)
	n.Start()
	const peers = 10
	for i := 0; i < peers; i++ {
		completeHandshake(t, n, env, ConnID(i+1), mkAddr(10, 0, 1, byte(i+1)), 0)
	}
	env.transmits = nil
	if _, err := n.MineBlock(0); err != nil {
		t.Fatal(err)
	}
	env.run(10 * time.Second)

	var times []time.Time
	for _, tr := range env.transmits {
		if iv, ok := tr.msg.(*wire.MsgInv); ok && len(iv.InvList) == 1 &&
			iv.InvList[0].Type == wire.InvTypeBlock {
			times = append(times, tr.at)
		}
	}
	if len(times) != peers {
		t.Fatalf("announced to %d peers, want %d", len(times), peers)
	}
	for _, at := range times {
		if !at.Equal(times[0]) {
			t.Fatal("broadcast announcements must be simultaneous")
		}
	}
}

func TestPriorityOutboundServicesOutboundFirst(t *testing.T) {
	env := newFakeEnv()
	cfg := testConfig(mkAddr(10, 0, 0, 1))
	cfg.RelayPolicy = PriorityOutbound
	n := New(cfg, env)
	n.Start()
	// Two inbound peers first, then one outbound.
	completeHandshake(t, n, env, 1, mkAddr(10, 0, 1, 1), 0)
	completeHandshake(t, n, env, 2, mkAddr(10, 0, 1, 2), 0)
	out := mkAddr(10, 0, 1, 3)
	n.AddrMan().Add([]wire.NetAddress{{Addr: out, Timestamp: env.Now()}}, out.Addr())
	n.dialing[out] = Outbound
	n.OnDialResult(out, 3, nil)
	n.OnMessage(3, &wire.MsgVersion{Timestamp: env.Now()})
	n.OnMessage(3, &wire.MsgVerAck{})
	env.run(time.Second)
	env.transmits = nil
	if _, err := n.MineBlock(0); err != nil {
		t.Fatal(err)
	}
	env.run(10 * time.Second)

	// The outbound peer (conn 3) must get the block announcement no
	// later than any inbound peer.
	var outAt, inFirst time.Time
	for _, tr := range env.transmits {
		iv, ok := tr.msg.(*wire.MsgInv)
		if !ok || len(iv.InvList) != 1 || iv.InvList[0].Type != wire.InvTypeBlock {
			continue
		}
		if tr.conn == 3 {
			outAt = tr.at
		} else if inFirst.IsZero() || tr.at.Before(inFirst) {
			inFirst = tr.at
		}
	}
	if outAt.IsZero() || inFirst.IsZero() {
		t.Fatal("missing announcements")
	}
	if outAt.After(inFirst) {
		t.Errorf("outbound announced at %v, after inbound first %v", outAt, inFirst)
	}
}

func TestBlockRelayEventDelays(t *testing.T) {
	// EvBlockRelayed events must carry non-decreasing delays for
	// successive peers under round-robin with queue backlog.
	env := newFakeEnv()
	cfg := testConfig(mkAddr(10, 0, 0, 1))
	var relays []Event
	cfg.Sink = SinkFunc(func(ev Event) {
		if ev.Type == EvBlockRelayed {
			relays = append(relays, ev)
		}
	})
	n := New(cfg, env)
	n.Start()
	for i := 0; i < 8; i++ {
		completeHandshake(t, n, env, ConnID(i+1), mkAddr(10, 0, 1, byte(i+1)), 0)
	}
	if _, err := n.MineBlock(0); err != nil {
		t.Fatal(err)
	}
	env.run(10 * time.Second)
	if len(relays) != 8 {
		t.Fatalf("relay events = %d, want 8", len(relays))
	}
	for _, ev := range relays {
		if ev.Delay < 0 {
			t.Errorf("negative relay delay %v", ev.Delay)
		}
	}
}

func TestStopDropsEverything(t *testing.T) {
	env := newFakeEnv()
	n := New(testConfig(mkAddr(10, 0, 0, 1)), env)
	n.Start()
	completeHandshake(t, n, env, 1, mkAddr(10, 0, 0, 2), 0)
	n.Stop()
	if !n.Stopped() {
		t.Fatal("Stopped = false after Stop")
	}
	if len(env.closed) == 0 {
		t.Error("connections not closed on Stop")
	}
	outbound, inbound, feelers := n.ConnCounts()
	if outbound+inbound+feelers != 0 {
		t.Error("connections remain after Stop")
	}
	// Messages after stop are ignored without panicking.
	n.OnMessage(1, &wire.MsgPing{Nonce: 1})
	env.run(time.Second)
}

func TestDisconnectClearsInFlightBlocks(t *testing.T) {
	env := newFakeEnv()
	n := New(testConfig(mkAddr(10, 0, 0, 1)), env)
	n.Start()
	completeHandshake(t, n, env, 1, mkAddr(10, 0, 0, 2), 0)
	h := chainhash.DoubleSHA256([]byte("block"))
	inv := &wire.MsgInv{}
	inv.InvList = []wire.InvVect{{Type: wire.InvTypeBlock, Hash: h}}
	n.OnMessage(1, inv)
	env.run(time.Second)
	if len(n.blocksInFlight) != 1 {
		t.Fatalf("in-flight = %d, want 1", len(n.blocksInFlight))
	}
	n.OnDisconnect(1)
	if len(n.blocksInFlight) != 0 {
		t.Error("in-flight blocks not cleared on disconnect")
	}
}

func TestFeelerDisconnectsAfterHandshake(t *testing.T) {
	env := newFakeEnv()
	cfg := testConfig(mkAddr(10, 0, 0, 1))
	cfg.FeelerInterval = time.Second
	cfg.MaxOutbound = -1 // isolate the feeler loop from outbound dialing
	n := New(cfg, env)
	n.Start()
	target := mkAddr(10, 0, 0, 9)
	n.AddrMan().Add([]wire.NetAddress{{Addr: target, Timestamp: env.Now()}}, target.Addr())
	env.run(1500 * time.Millisecond) // feeler tick fires
	if len(env.dials) == 0 {
		t.Fatal("feeler never dialed")
	}
	if got, want := env.dials[len(env.dials)-1], target; got != want {
		t.Fatalf("feeler dialed %v, want %v", got, want)
	}
	// Complete the feeler handshake; the node must disconnect and promote.
	n.OnDialResult(target, 42, nil)
	n.OnMessage(42, &wire.MsgVersion{Timestamp: env.Now()})
	n.OnMessage(42, &wire.MsgVerAck{})
	env.run(time.Second)
	if !n.AddrMan().InTried(target) {
		t.Error("feeler success did not promote the address to tried")
	}
	closed := false
	for _, id := range env.closed {
		if id == 42 {
			closed = true
		}
	}
	if !closed {
		t.Error("feeler connection not closed after handshake")
	}
}

func TestGetDataForMissingObjectAnswersNotFound(t *testing.T) {
	env := newFakeEnv()
	n := New(testConfig(mkAddr(10, 0, 0, 1)), env)
	n.Start()
	completeHandshake(t, n, env, 1, mkAddr(10, 0, 0, 2), 0)
	gd := &wire.MsgGetData{}
	gd.InvList = []wire.InvVect{{Type: wire.InvTypeTx, Hash: chainhash.DoubleSHA256([]byte("nope"))}}
	n.OnMessage(1, gd)
	env.run(time.Second)
	var nf *wire.MsgNotFound
	for _, m := range env.transmitsTo(1) {
		if m2, ok := m.(*wire.MsgNotFound); ok {
			nf = m2
		}
	}
	if nf == nil {
		t.Error("missing object GETDATA not answered with NOTFOUND")
	}
}
