package node

import (
	"time"

	"repro/internal/obs"
	"repro/internal/wire"
)

// This file implements the message-handling pump: the reproduction of
// Bitcoin Core's SocketHandler/ThreadMessageHandler pair (Figure 9 of the
// paper) and the round-robin scheduling of Algorithm 3. Each pump
// iteration walks the connections in order and, per connection, processes
// at most one received message and transmits at most one queued outgoing
// message. Service time accumulates across the loop, so a block queued to
// the last of k busy connections leaves roughly k service times late —
// the mechanism behind the 1.39 s mean / 17 s max block relay delays the
// paper measures in §IV-C.

// queueMsg appends msg to the peer's vSendMsg queue (or transmits
// immediately under the Broadcast policy for announcement classes) and
// arms the pump.
func (n *Node) queueMsg(p *Peer, msg wire.Message, class msgClass) {
	n.queueRelay(p, msg, class, outMsg{})
}

// queueRelay is queueMsg with relay instrumentation: mark carries the
// object hash and original receive time.
func (n *Node) queueRelay(p *Peer, msg wire.Message, class msgClass, mark outMsg) {
	out := outMsg{
		msg:       msg,
		class:     class,
		enqueued:  n.env.Now(),
		relayMark: mark.relayMark,
		recvAt:    mark.recvAt,
	}
	switch n.pol.relay {
	case Broadcast:
		// Idealized lock-step broadcast: announcements leave instantly,
		// concurrently to every connection.
		if class == classBlock || class == classTx {
			n.transmitNow(p, out, 0)
			return
		}
	case PriorityOutbound:
		// §V refinement: block traffic jumps ahead of queued requests.
		if class == classBlock {
			p.insertSendPriority(out)
			n.pending++
			n.armPump()
			return
		}
	}
	p.pushSend(out)
	n.pending++
	n.armPump()
}

// transmitNow hands a message to the environment with the given local
// serialization delay and emits relay instrumentation.
func (n *Node) transmitNow(p *Peer, out outMsg, delay time.Duration) {
	n.env.Transmit(p.id, out.msg, delay)
	if out.relayMark.IsZero() {
		return
	}
	at := n.env.Now().Add(delay)
	relayDelay := at.Sub(out.recvAt)
	evType := EvTxRelayed
	kind := obs.KindRelayTx
	if out.class == classBlock {
		evType = EvBlockRelayed
		kind = obs.KindRelayBlock
		n.met.relayBlock.ObserveDuration(relayDelay)
	} else {
		n.met.relayTx.ObserveDuration(relayDelay)
	}
	if n.tracer != nil {
		// Per-hop relay span event: Parent is this node's delivery span
		// for the object, so PropagationTree can aggregate the
		// receive-to-last-connection delay without extra bookkeeping.
		n.tracer.Emit(obs.Event{
			Time: at, Kind: kind, From: n.cfg.Self.Addr, To: p.addr,
			Detail: out.relayMark.String()[:16], Dur: relayDelay,
			Parent: obs.SpanKey(n.cfg.Self.Addr, out.relayMark[:]),
		})
	}
	n.emit(Event{
		Type: evType, Time: at, Node: n.cfg.Self.Addr, Peer: p.addr,
		Dir: p.dir, Hash: out.relayMark, Delay: relayDelay,
	})
}

// armPump schedules a pump iteration if one is not already pending.
func (n *Node) armPump() {
	if n.pumpArmed || n.stopped {
		return
	}
	n.pumpArmed = true
	n.env.Schedule(0, n.pumpOnce)
}

// pumpOrder returns the connection servicing order for this iteration.
// RoundRobin and Broadcast use arrival order (Bitcoin Core iterates
// vNodes in connection order); PriorityOutbound services outbound
// connections first.
func (n *Node) pumpOrder() []ConnID {
	if n.pol.relay != PriorityOutbound {
		return n.rrOrder
	}
	order := make([]ConnID, 0, len(n.rrOrder))
	for _, id := range n.rrOrder {
		if p := n.peers[id]; p != nil && p.dir != Inbound {
			order = append(order, id)
		}
	}
	for _, id := range n.rrOrder {
		if p := n.peers[id]; p != nil && p.dir == Inbound {
			order = append(order, id)
		}
	}
	return order
}

// pumpOnce runs one message-handler loop iteration (Algorithm 3).
func (n *Node) pumpOnce() {
	n.pumpArmed = false
	if n.stopped {
		return
	}
	// The previous loop's socket serialization may still be in progress
	// in virtual time (a pump armed by message arrival fires
	// immediately); do not start the next loop before it completes —
	// this is what makes a 1 MB block body actually occupy the wire.
	now := n.env.Now()
	if now.Before(n.busyUntil) {
		n.pumpArmed = true
		n.env.Schedule(n.busyUntil.Sub(now), n.pumpOnce)
		return
	}
	busy := time.Duration(0)
	order := n.pumpOrder()
	for _, id := range order {
		p, ok := n.peers[id]
		if !ok {
			continue
		}
		// ThreadMessageHandler: process one message from vProcessMsg.
		if p.recvLen() > 0 {
			busy += n.cfg.MsgProcTime
			n.pending--
			n.handleMessage(p, p.popRecv())
		}
		// SocketHandler: write one message from vSendMsg.
		// The peer may have been disconnected by the handler above.
		if _, still := n.peers[id]; !still {
			continue
		}
		if p.queueLen() > 0 {
			out := p.popSend()
			busy += n.sendTime(out.msg)
			n.pending--
			n.transmitNow(p, out, busy)
		}
	}
	n.busyUntil = now.Add(busy)
	// Re-run while any queue holds work; each loop costs its accumulated
	// service time plus a fixed overhead. armPump may already have
	// scheduled a wake-up during processing; the busyUntil guard above
	// keeps that early firing honest.
	if n.hasPendingWork() && !n.pumpArmed {
		n.pumpArmed = true
		n.env.Schedule(busy+n.cfg.LoopOverhead, n.pumpOnce)
	}
}

// hasPendingWork reports whether any peer queue is non-empty.
func (n *Node) hasPendingWork() bool { return n.pending > 0 }

// sendTime models the local serialization cost of one message: a fixed
// overhead plus wire size over the per-socket rate.
func (n *Node) sendTime(msg wire.Message) time.Duration {
	size := n.sizeEstimate(msg)
	return n.cfg.MsgProcTime +
		time.Duration(size)*time.Second/time.Duration(n.cfg.BytesPerSec)
}

// sizeEstimate approximates the wire size of msg without serializing.
// Full blocks are clamped up to BlockSizeHint: simulated blocks carry few
// transactions, while the 2020 mainnet blocks whose propagation the paper
// measures averaged ~1 MB, and the timing model should reflect the
// latter.
func (n *Node) sizeEstimate(msg wire.Message) int {
	switch m := msg.(type) {
	case *wire.MsgBlock:
		size := m.SerializeSize()
		if size < n.cfg.BlockSizeHint {
			size = n.cfg.BlockSizeHint
		}
		return size
	case *wire.MsgCmpctBlock:
		// Header + nonce + 6 bytes per short ID + prefilled coinbase;
		// BIP-152 compact blocks are ~9 KB for a 1 MB block. Scale with
		// the block size hint.
		base := 88 + wire.ShortIDSize*len(m.ShortIDs) + 300
		hintScaled := n.cfg.BlockSizeHint / 120
		if base < hintScaled {
			base = hintScaled
		}
		return base
	case *wire.MsgTx:
		return m.SerializeSize()
	case *wire.MsgBlockTxn:
		size := 40
		for i := range m.Transactions {
			size += m.Transactions[i].SerializeSize()
		}
		return size
	case *wire.MsgAddr:
		return 3 + 30*len(m.AddrList)
	case *wire.MsgInv:
		return 1 + 36*len(m.InvList)
	case *wire.MsgGetData:
		return 1 + 36*len(m.InvList)
	case *wire.MsgHeaders:
		return 1 + 81*len(m.Headers)
	case *wire.MsgGetHeaders:
		return 37 + 32*len(m.BlockLocatorHashes)
	case *wire.MsgVersion:
		return 86 + len(m.UserAgent)
	default:
		return 24
	}
}
