package node

import (
	"time"

	"repro/internal/obs"
	"repro/internal/wire"
)

// This file implements the message-handling pump: the reproduction of
// Bitcoin Core's SocketHandler/ThreadMessageHandler pair (Figure 9 of the
// paper) and the round-robin scheduling of Algorithm 3. Each pump
// iteration walks the connections in order and, per connection, processes
// at most one received message and transmits at most one queued outgoing
// message. Service time accumulates across the loop, so a block queued to
// the last of k busy connections leaves roughly k service times late —
// the mechanism behind the 1.39 s mean / 17 s max block relay delays the
// paper measures in §IV-C.

// queueMsg appends msg to the peer's vSendMsg queue (or transmits
// immediately under the Broadcast policy for announcement classes) and
// arms the pump.
func (n *Node) queueMsg(p *Peer, msg wire.Message, class msgClass) {
	n.queueRelay(p, msg, class, outMsg{})
}

// queueRelay is queueMsg with relay instrumentation: mark carries the
// object hash and original receive time.
func (n *Node) queueRelay(p *Peer, msg wire.Message, class msgClass, mark outMsg) {
	out := outMsg{
		msg:       msg,
		class:     class,
		enqueued:  n.env.Now(),
		relayMark: mark.relayMark,
		recvAt:    mark.recvAt,
	}
	switch n.pol.relay {
	case Broadcast:
		// Idealized lock-step broadcast: announcements leave instantly,
		// concurrently to every connection.
		if class == classBlock || class == classTx {
			n.transmitNow(p, out, 0)
			return
		}
	case PriorityOutbound:
		// §V refinement: block traffic jumps ahead of queued requests.
		if class == classBlock {
			p.insertSendPriority(out)
			n.pending++
			n.armPump()
			return
		}
	}
	p.pushSend(out)
	n.pending++
	n.armPump()
}

// transmitNow hands a message to the environment with the given local
// serialization delay and emits relay instrumentation.
func (n *Node) transmitNow(p *Peer, out outMsg, delay time.Duration) {
	n.env.Transmit(p.id, out.msg, delay)
	if out.relayMark.IsZero() {
		return
	}
	at := n.env.Now().Add(delay)
	relayDelay := at.Sub(out.recvAt)
	evType := EvTxRelayed
	kind := obs.KindRelayTx
	if out.class == classBlock {
		evType = EvBlockRelayed
		kind = obs.KindRelayBlock
		n.met.relayBlock.ObserveDuration(relayDelay)
	} else {
		n.met.relayTx.ObserveDuration(relayDelay)
	}
	if n.tracer != nil {
		// Per-hop relay span event: Parent is this node's delivery span
		// for the object, so PropagationTree can aggregate the
		// receive-to-last-connection delay without extra bookkeeping.
		n.tracer.Emit(obs.Event{
			Time: at, Kind: kind, From: n.cfg.Self.Addr, To: p.addr,
			Detail: out.relayMark.String()[:16], Dur: relayDelay,
			Parent: obs.SpanKey(n.cfg.Self.Addr, out.relayMark[:]),
		})
	}
	n.emit(Event{
		Type: evType, Time: at, Node: n.cfg.Self.Addr, Peer: p.addr,
		Dir: p.dir, Hash: out.relayMark, Delay: relayDelay,
	})
}

// armPump schedules a pump iteration if one is not already pending.
// pumpFn is the cached method value: Schedule takes a func() and a fresh
// n.pumpOnce closure per call would allocate on every arm.
func (n *Node) armPump() {
	if n.pumpArmed || n.stopped {
		return
	}
	n.pumpArmed = true
	n.env.Schedule(0, n.pumpFn)
}

// pumpOnce runs one message-handler loop iteration (Algorithm 3).
// RoundRobin and Broadcast service connections in arrival order (Bitcoin
// Core iterates vNodes in connection order); PriorityOutbound services
// outbound connections first, as a second inline pass over the slots —
// no order slice is materialized.
func (n *Node) pumpOnce() {
	n.pumpArmed = false
	if n.stopped {
		return
	}
	// The previous loop's socket serialization may still be in progress
	// in virtual time (a pump armed by message arrival fires
	// immediately); do not start the next loop before it completes —
	// this is what makes a 1 MB block body actually occupy the wire.
	now := n.env.Now()
	if now.Before(n.busyUntil) {
		n.pumpArmed = true
		n.env.Schedule(n.busyUntil.Sub(now), n.pumpFn)
		return
	}
	n.maybeCompactSlots()
	n.inPump = true
	busy := time.Duration(0)
	// Peers added mid-loop must not be serviced this iteration (the old
	// order snapshot had the same property), so the bound is fixed here.
	limit := len(n.slots)
	if n.pol.relay != PriorityOutbound {
		for i := 0; i < limit && !n.stopped; i++ {
			n.serviceSlot(i, &busy)
		}
	} else {
		for i := 0; i < limit && !n.stopped; i++ {
			if p := n.slots[i]; p != nil && p.dir != Inbound {
				n.serviceSlot(i, &busy)
			}
		}
		for i := 0; i < limit && !n.stopped; i++ {
			if p := n.slots[i]; p != nil && p.dir == Inbound {
				n.serviceSlot(i, &busy)
			}
		}
	}
	n.inPump = false
	n.maybeCompactSlots()
	if n.stopped {
		return
	}
	n.busyUntil = now.Add(busy)
	// Re-run while any queue holds work; each loop costs its accumulated
	// service time plus a fixed overhead. armPump may already have
	// scheduled a wake-up during processing; the busyUntil guard above
	// keeps that early firing honest.
	if n.hasPendingWork() && !n.pumpArmed {
		n.pumpArmed = true
		n.env.Schedule(busy+n.cfg.LoopOverhead, n.pumpFn)
	}
}

// serviceSlot runs one round-robin quantum for the peer in slot i:
// process one received message, transmit one queued message. The slot is
// re-read around the handler because handling a message may disconnect
// this peer (or others — their slots go nil and are skipped naturally).
func (n *Node) serviceSlot(i int, busy *time.Duration) {
	p := n.slots[i]
	if p == nil {
		return
	}
	// ThreadMessageHandler: process one message from vProcessMsg.
	if p.recvLen() > 0 {
		*busy += n.cfg.MsgProcTime
		n.pending--
		n.handleMessage(p, p.popRecv())
	}
	// SocketHandler: write one message from vSendMsg.
	// The peer may have been disconnected by the handler above.
	if n.stopped || n.slots[i] != p {
		return
	}
	if p.queueLen() > 0 {
		out := p.popSend()
		*busy += n.sendTime(out.msg)
		n.pending--
		n.transmitNow(p, out, *busy)
	}
}

// maxFreeList bounds each recycled-message free list.
const maxFreeList = 64

// getPong returns a PONG value from the free list, or a fresh one. The
// free list is fed only by RecycleOutbound.
func (n *Node) getPong() *wire.MsgPong {
	if k := len(n.pongFree); k > 0 {
		pong := n.pongFree[k-1]
		n.pongFree = n.pongFree[:k-1]
		return pong
	}
	return new(wire.MsgPong)
}

// getInv returns an empty INV from the free list, or a fresh one.
func (n *Node) getInv() *wire.MsgInv {
	if k := len(n.invFree); k > 0 {
		inv := n.invFree[k-1]
		n.invFree = n.invFree[:k-1]
		inv.InvList = inv.InvList[:0]
		return inv
	}
	return new(wire.MsgInv)
}

// RecycleOutbound returns a message previously handed to Env.Transmit to
// the node's free lists. Only an environment that fully consumes each
// transmitted message at Transmit time — serializing or discarding it
// before returning — may call this, at most once per transmitted
// message. Environments that retain message pointers or may deliver the
// same pointer twice (simnet under Duplicate fault verdicts, test envs
// that record transmits) must never call it; with the free lists unfed,
// every outbound message is freshly allocated, exactly as before.
func (n *Node) RecycleOutbound(msg wire.Message) {
	switch m := msg.(type) {
	case *wire.MsgPong:
		if len(n.pongFree) < maxFreeList {
			n.pongFree = append(n.pongFree, m)
		}
	case *wire.MsgInv:
		if len(n.invFree) < maxFreeList && cap(m.InvList) <= 64 {
			n.invFree = append(n.invFree, m)
		}
	}
}

// hasPendingWork reports whether any peer queue is non-empty.
func (n *Node) hasPendingWork() bool { return n.pending > 0 }

// sendTime models the local serialization cost of one message: a fixed
// overhead plus wire size over the per-socket rate.
func (n *Node) sendTime(msg wire.Message) time.Duration {
	size := n.sizeEstimate(msg)
	return n.cfg.MsgProcTime +
		time.Duration(size)*time.Second/time.Duration(n.cfg.BytesPerSec)
}

// sizeEstimate approximates the wire size of msg without serializing.
// Full blocks are clamped up to BlockSizeHint: simulated blocks carry few
// transactions, while the 2020 mainnet blocks whose propagation the paper
// measures averaged ~1 MB, and the timing model should reflect the
// latter.
func (n *Node) sizeEstimate(msg wire.Message) int {
	switch m := msg.(type) {
	case *wire.MsgBlock:
		size := m.SerializeSize()
		if size < n.cfg.BlockSizeHint {
			size = n.cfg.BlockSizeHint
		}
		return size
	case *wire.MsgCmpctBlock:
		// Header + nonce + 6 bytes per short ID + prefilled coinbase;
		// BIP-152 compact blocks are ~9 KB for a 1 MB block. Scale with
		// the block size hint.
		base := 88 + wire.ShortIDSize*len(m.ShortIDs) + 300
		hintScaled := n.cfg.BlockSizeHint / 120
		if base < hintScaled {
			base = hintScaled
		}
		return base
	case *wire.MsgTx:
		return m.SerializeSize()
	case *wire.MsgBlockTxn:
		size := 40
		for i := range m.Transactions {
			size += m.Transactions[i].SerializeSize()
		}
		return size
	case *wire.MsgAddr:
		return 3 + 30*len(m.AddrList)
	case *wire.MsgInv:
		return 1 + 36*len(m.InvList)
	case *wire.MsgGetData:
		return 1 + 36*len(m.InvList)
	case *wire.MsgHeaders:
		return 1 + 81*len(m.Headers)
	case *wire.MsgGetHeaders:
		return 37 + 32*len(m.BlockLocatorHashes)
	case *wire.MsgVersion:
		return 86 + len(m.UserAgent)
	default:
		return 24
	}
}
