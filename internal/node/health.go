package node

import (
	"net/netip"
	"sort"
	"time"

	"repro/internal/chainhash"
	"repro/internal/wire"
)

// This file implements the node's connection-health machinery: keepalive
// pings with stall eviction, handshake timeouts, block-download stall
// detection, and the per-address reconnect backoff. Together these are
// the defences that keep a node syncing through the churn and message
// loss the paper identifies as the environment of the 2020 network.

// HealthStats aggregates robustness counters for measurement code.
type HealthStats struct {
	// PingsSent counts keepalive PING messages sent on idle connections.
	PingsSent int
	// StallEvictions counts peers dropped for an unanswered keepalive.
	StallEvictions int
	// HandshakeEvictions counts peers dropped for never completing
	// VERSION/VERACK.
	HandshakeEvictions int
	// BlockStallEvictions counts peers dropped for sitting on a
	// requested block past the block-stall timeout.
	BlockStallEvictions int
	// BackoffsArmed counts failed dials that armed (or extended) a
	// per-address reconnect backoff.
	BackoffsArmed int
}

// Health returns the node's robustness counters since start.
func (n *Node) Health() HealthStats { return n.health }

// backoffState is the per-address reconnect schedule.
type backoffState struct {
	failures int
	until    time.Time
}

// maxBackoffEntries bounds the backoff map; on overflow expired entries
// are pruned, falling back to a reset if everything is live.
const maxBackoffEntries = 4096

// healthTickInterval derives the health-check cadence from the enabled
// timeouts: a quarter of the tightest one, clamped to [1s, 30s]. It
// returns 0 when every health feature is disabled, in which case the
// tick is never scheduled.
func (n *Node) healthTickInterval() time.Duration {
	tightest := time.Duration(0)
	for _, d := range []time.Duration{
		n.cfg.PingInterval, n.cfg.HandshakeTimeout, n.cfg.BlockStallTimeout,
	} {
		if d > 0 && (tightest == 0 || d < tightest) {
			tightest = d
		}
	}
	// StallTimeout matters only if keepalives are sent at all, and it is
	// never tighter than PingInterval in practice; PingInterval already
	// covers its cadence.
	if tightest == 0 {
		return 0
	}
	interval := tightest / 4
	if interval < time.Second {
		interval = time.Second
	}
	if interval > 30*time.Second {
		interval = 30 * time.Second
	}
	return interval
}

// healthTick runs the periodic connection-health checks and reschedules
// itself. All eviction decisions are collected before acting so map and
// slice mutation never happens under iteration, and eviction order is
// deterministic (slot order for peers, sorted hashes for blocks).
func (n *Node) healthTick() {
	if n.stopped {
		return
	}
	now := n.env.Now()
	n.checkHandshakes(now)
	n.checkKeepalive(now)
	n.checkBlockStalls(now)
	if d := n.healthTickInterval(); d > 0 {
		n.env.Schedule(d, n.healthTick)
	}
}

// checkHandshakes evicts peers that have not completed VERSION/VERACK
// within the handshake timeout — the defence against black-hole peers
// that accept a connection and then say nothing.
func (n *Node) checkHandshakes(now time.Time) {
	if n.cfg.HandshakeTimeout <= 0 {
		return
	}
	var stale []*Peer
	for _, p := range n.slots {
		if p == nil || p.handshook {
			continue
		}
		if now.Sub(p.connected) >= n.cfg.HandshakeTimeout {
			stale = append(stale, p)
		}
	}
	for _, p := range stale {
		n.health.HandshakeEvictions++
		n.met.handshakeEvict.Inc()
		n.emit(Event{
			Type: EvHandshakeTimeout, Time: now, Node: n.cfg.Self.Addr,
			Peer: p.addr, Dir: p.dir, Conn: p.id,
		})
		n.disconnectPeer(p)
	}
}

// checkKeepalive sends PINGs on idle connections and evicts peers whose
// outstanding PING has gone unanswered past the stall timeout — Bitcoin
// Core's PING_INTERVAL / TIMEOUT_INTERVAL pair.
func (n *Node) checkKeepalive(now time.Time) {
	var stalled []*Peer
	for _, p := range n.slots {
		if p == nil || !p.handshook {
			continue
		}
		if p.pingNonce != 0 {
			if n.cfg.StallTimeout > 0 && now.Sub(p.pingSent) >= n.cfg.StallTimeout {
				stalled = append(stalled, p)
			}
			continue
		}
		if n.cfg.PingInterval <= 0 {
			continue
		}
		idleSince := p.lastRecv
		if idleSince.IsZero() {
			idleSince = p.connected
		}
		if now.Sub(idleSince) >= n.cfg.PingInterval {
			nonce := n.env.Rand().Uint64()
			if nonce == 0 {
				nonce = 1 // zero means "no PING outstanding"
			}
			p.pingNonce = nonce
			p.pingSent = now
			n.health.PingsSent++
			n.met.pingsSent.Inc()
			n.queueMsg(p, &wire.MsgPing{Nonce: nonce}, classControl)
		}
	}
	for _, p := range stalled {
		n.health.StallEvictions++
		n.met.stallEvict.Inc()
		n.emit(Event{
			Type: EvPeerStalled, Time: now, Node: n.cfg.Self.Addr,
			Peer: p.addr, Dir: p.dir, Conn: p.id,
		})
		n.disconnectPeer(p)
	}
}

// handlePong clears the outstanding keepalive when the nonce matches.
func (n *Node) handlePong(p *Peer, m *wire.MsgPong) {
	if p.pingNonce != 0 && m.Nonce == p.pingNonce {
		p.pingNonce = 0
	}
}

// checkBlockStalls evicts peers that have held a requested block past
// the block-stall timeout (the simplified form of Bitcoin Core's
// 2-minute stalling rule), so IBD can continue from another peer.
func (n *Node) checkBlockStalls(now time.Time) {
	if n.cfg.BlockStallTimeout <= 0 {
		return
	}
	// Collect the oldest stalled request per connection, deterministically
	// despite map iteration: gather then sort by (conn, hash).
	type stall struct {
		conn ConnID
		hash chainhash.Hash
	}
	var stalls []stall
	for h, f := range n.blocksInFlight {
		if now.Sub(f.requested) >= n.cfg.BlockStallTimeout {
			stalls = append(stalls, stall{f.conn, h})
		}
	}
	if len(stalls) == 0 {
		return
	}
	sort.Slice(stalls, func(i, j int) bool {
		if stalls[i].conn != stalls[j].conn {
			return stalls[i].conn < stalls[j].conn
		}
		return stalls[i].hash.String() < stalls[j].hash.String()
	})
	evicted := make(map[ConnID]bool)
	for _, s := range stalls {
		if evicted[s.conn] {
			continue
		}
		evicted[s.conn] = true
		p := n.peerByConn(s.conn)
		if p == nil {
			// Connection already gone; just clear its requests.
			n.clearInFlight(s.conn)
			continue
		}
		n.health.BlockStallEvictions++
		n.met.blockStallEvict.Inc()
		n.emit(Event{
			Type: EvBlockStalled, Time: now, Node: n.cfg.Self.Addr,
			Peer: p.addr, Dir: p.dir, Conn: p.id, Hash: s.hash,
		})
		// disconnectPeer clears this conn's in-flight blocks and kicks a
		// header resync from another peer.
		n.disconnectPeer(p)
	}
}

// clearInFlight forgets blocks requested from conn (they will never
// arrive) and, if any were dropped mid-IBD, restarts header sync from
// another peer that is ahead so the download resumes.
func (n *Node) clearInFlight(conn ConnID) {
	cleared := 0
	for h, f := range n.blocksInFlight {
		if f.conn == conn {
			delete(n.blocksInFlight, h)
			cleared++
		}
	}
	if cleared == 0 || n.stopped || len(n.blocksInFlight) > 0 {
		return
	}
	// The download pipeline drained abnormally: resume from the first
	// handshook peer still ahead of our tip.
	for _, p := range n.slots {
		if p != nil && p.handshook && p.dir != Feeler && p.startHeight > n.chain.Height() {
			n.requestHeaders(p)
			return
		}
	}
}

// inBackoff reports whether addr is still inside its reconnect backoff
// window.
func (n *Node) inBackoff(addr netip.AddrPort) bool {
	st, ok := n.backoff[addr]
	return ok && n.env.Now().Before(st.until)
}

// armBackoff schedules the next allowed dial to addr after a failure:
// base×2^(failures−1), capped at max, then jittered ±50% so a network
// full of nodes does not retry in lockstep.
func (n *Node) armBackoff(addr netip.AddrPort) {
	if n.cfg.DialBackoffBase <= 0 {
		return
	}
	st := n.backoff[addr]
	if st == nil {
		n.pruneBackoff()
		st = &backoffState{}
		n.backoff[addr] = st
	}
	st.failures++
	shift := st.failures - 1
	if shift > 16 {
		shift = 16
	}
	d := n.cfg.DialBackoffBase << uint(shift)
	if d <= 0 || d > n.cfg.DialBackoffMax {
		d = n.cfg.DialBackoffMax
	}
	// Jitter uniformly in [d/2, 3d/2).
	d = d/2 + time.Duration(n.env.Rand().Int63n(int64(d)))
	st.until = n.env.Now().Add(d)
	n.health.BackoffsArmed++
	n.met.backoffArmed.Inc()
	n.emit(Event{
		Type: EvDialBackoff, Time: n.env.Now(), Node: n.cfg.Self.Addr,
		Peer: addr, Delay: d, Count: st.failures,
	})
}

// clearBackoff resets addr's backoff after a successful dial.
func (n *Node) clearBackoff(addr netip.AddrPort) {
	delete(n.backoff, addr)
}

// pruneBackoff keeps the backoff map bounded: drop expired entries, and
// if everything is still live, reset — re-dialing early costs one wasted
// attempt, unbounded growth costs memory forever.
func (n *Node) pruneBackoff() {
	if len(n.backoff) < maxBackoffEntries {
		return
	}
	now := n.env.Now()
	for a, st := range n.backoff {
		if !now.Before(st.until) {
			delete(n.backoff, a)
		}
	}
	if len(n.backoff) >= maxBackoffEntries {
		n.backoff = make(map[netip.AddrPort]*backoffState)
	}
}
