package churn

import (
	"net/netip"
	"strings"
	"testing"
	"time"

	"repro/internal/netgen"
)

func mkAddr(i int) netip.AddrPort {
	return netip.AddrPortFrom(netip.AddrFrom4([4]byte{10, byte(i >> 8), byte(i), 1}), 8333)
}

func sampleTimes(n int, interval time.Duration) []time.Time {
	epoch := time.Unix(1586000000, 0).UTC()
	out := make([]time.Time, n)
	for i := range out {
		out[i] = epoch.Add(time.Duration(i) * interval)
	}
	return out
}

// buildTest builds a matrix from a pattern: one string per row,
// '1' = present.
func buildTest(t *testing.T, patterns []string) *Matrix {
	t.Helper()
	cols := len(patterns[0])
	addrs := make([]netip.AddrPort, len(patterns))
	for i := range addrs {
		addrs[i] = mkAddr(i)
	}
	times := sampleTimes(cols, 24*time.Hour)
	return Build(addrs, times, 24*time.Hour, func(i, j int) bool {
		return patterns[i][j] == '1'
	})
}

func TestMatrixBasics(t *testing.T) {
	m := buildTest(t, []string{
		"1111",
		"1100",
		"0011",
		"0000",
	})
	if m.Rows() != 4 || m.Cols() != 4 {
		t.Fatalf("dims = %dx%d, want 4x4", m.Rows(), m.Cols())
	}
	if !m.At(0, 3) || m.At(3, 0) || !m.At(2, 2) {
		t.Error("At() disagrees with pattern")
	}
	if got := m.RowOnes(1); got != 2 {
		t.Errorf("RowOnes(1) = %d, want 2", got)
	}
	if got := m.ColOnes(0); got != 2 {
		t.Errorf("ColOnes(0) = %d, want 2", got)
	}
	if got := m.ColOnes(2); got != 2 {
		t.Errorf("ColOnes(2) = %d, want 2", got)
	}
}

func TestPersistentCount(t *testing.T) {
	m := buildTest(t, []string{
		"1111",
		"1101",
		"1111",
	})
	if got := m.PersistentCount(); got != 2 {
		t.Errorf("PersistentCount = %d, want 2", got)
	}
}

func TestMeanLifetime(t *testing.T) {
	m := buildTest(t, []string{
		"1111", // 4 days
		"1100", // 2 days
	})
	want := 3 * 24 * time.Hour
	if got := m.MeanLifetime(); got != want {
		t.Errorf("MeanLifetime = %v, want %v", got, want)
	}
}

func TestTransitions(t *testing.T) {
	m := buildTest(t, []string{
		"1100", // departs at j=2
		"0011", // arrives at j=2
		"1011", // departs at j=1, arrives at j=2
		"1111", // stable
	})
	tr := m.Transitions()
	if len(tr.Departures) != 3 {
		t.Fatalf("pairs = %d, want 3", len(tr.Departures))
	}
	// j=0→1: row2 departs? pattern "1011": j0=1, j1=0 → departure.
	if tr.Departures[0] != 1 || tr.Arrivals[0] != 0 {
		t.Errorf("pair 0 = %d dep/%d arr, want 1/0", tr.Departures[0], tr.Arrivals[0])
	}
	// j=1→2: row0 departs (1→0), row1 arrives (0→1), row2 arrives (0→1).
	if tr.Departures[1] != 1 || tr.Arrivals[1] != 2 {
		t.Errorf("pair 1 = %d dep/%d arr, want 1/2", tr.Departures[1], tr.Arrivals[1])
	}
	// j=2→3: stable.
	if tr.Departures[2] != 0 || tr.Arrivals[2] != 0 {
		t.Errorf("pair 2 = %d dep/%d arr, want 0/0", tr.Departures[2], tr.Arrivals[2])
	}
	if got := tr.MeanDepartures(); got < 0.66 || got > 0.67 {
		t.Errorf("MeanDepartures = %v, want 2/3", got)
	}
	if got := tr.MeanArrivals(); got < 0.66 || got > 0.67 {
		t.Errorf("MeanArrivals = %v, want 2/3", got)
	}
}

func TestTransitionsEmptyAndSingle(t *testing.T) {
	m := buildTest(t, []string{"1"})
	tr := m.Transitions()
	if len(tr.Departures) != 0 {
		t.Error("single-column matrix should have no transitions")
	}
	if tr.MeanDepartures() != 0 || tr.MeanArrivals() != 0 {
		t.Error("empty transitions should average to zero")
	}
}

func TestRender(t *testing.T) {
	m := buildTest(t, []string{
		"1111",
		"0000",
	})
	out := m.Render(10, 10)
	if !strings.Contains(out, "#") || !strings.Contains(out, ".") {
		t.Errorf("render missing marks:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 { // header + 2 rows
		t.Errorf("render lines = %d, want 3:\n%s", len(lines), out)
	}
}

func TestMatrixWideColumns(t *testing.T) {
	// More than 64 columns exercises multi-word rows.
	cols := 130
	addrs := []netip.AddrPort{mkAddr(0)}
	times := sampleTimes(cols, time.Hour)
	m := Build(addrs, times, time.Hour, func(i, j int) bool { return j%3 == 0 })
	want := 0
	for j := 0; j < cols; j++ {
		if j%3 == 0 {
			want++
			if !m.At(0, j) {
				t.Fatalf("At(0,%d) = false, want true", j)
			}
		} else if m.At(0, j) {
			t.Fatalf("At(0,%d) = true, want false", j)
		}
	}
	if got := m.RowOnes(0); got != want {
		t.Errorf("RowOnes = %d, want %d", got, want)
	}
}

func TestFromUniverseAgainstOnlineAt(t *testing.T) {
	p := netgen.DefaultParams(3, 0.01)
	u, err := netgen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	m := FromUniverse(u, 24*time.Hour)
	if m.Rows() != len(u.Reachable) {
		t.Fatalf("rows = %d, want %d", m.Rows(), len(u.Reachable))
	}
	if m.Cols() != 60 {
		t.Fatalf("cols = %d, want 60", m.Cols())
	}
	// Spot-check agreement with Station.OnlineAt.
	for i := 0; i < m.Rows(); i += 7 {
		s := u.Reachable[i]
		for j := 0; j < m.Cols(); j += 11 {
			if m.At(i, j) != s.OnlineAt(m.Times[j]) {
				t.Fatalf("matrix/OnlineAt disagree at row %d col %d", i, j)
			}
		}
	}
}

func TestFromUniversePersistentsAreFullRows(t *testing.T) {
	p := netgen.DefaultParams(4, 0.01)
	u, err := netgen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	m := FromUniverse(u, 24*time.Hour)
	wantPersistent := 0
	for _, s := range u.Reachable {
		if s.Persistent {
			wantPersistent++
		}
	}
	if got := m.PersistentCount(); got < wantPersistent {
		t.Errorf("PersistentCount = %d, want >= %d (persistents must be full rows)",
			got, wantPersistent)
	}
}

func TestSyncedDeparturesRegimeContrast(t *testing.T) {
	// The 2020 regime must show materially more synchronized departures
	// than 2019 — the paper's headline churn finding.
	scale := 0.05
	u20, err := netgen.Generate(netgen.DefaultParams(5, scale))
	if err != nil {
		t.Fatal(err)
	}
	u19, err := netgen.Generate(netgen.Params2019(5, scale))
	if err != nil {
		t.Fatal(err)
	}
	// Hourly cadence keeps the test fast; the ratio is what matters.
	d20 := SyncedDepartures(u20, time.Hour)
	d19 := SyncedDepartures(u19, time.Hour)
	if d20 <= d19 {
		t.Errorf("synced departures 2020 (%.2f) should exceed 2019 (%.2f)", d20, d19)
	}
	if d19 <= 0 {
		t.Error("2019 regime shows zero churn; calibration broken")
	}
	ratio := d20 / d19
	if ratio < 1.3 || ratio > 4.0 {
		t.Errorf("2020/2019 departure ratio = %.2f, want ≈2", ratio)
	}
}

func BenchmarkFromUniverse(b *testing.B) {
	p := netgen.DefaultParams(6, 0.02)
	u, err := netgen.Generate(p)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FromUniverse(u, 24*time.Hour)
	}
}
