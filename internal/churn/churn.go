// Package churn implements the paper's §IV-D churn analyses: the binary
// presence matrix of Algorithm 4 (Figure 12), daily arrival/departure
// counts (Figure 13), persistent-node counting, node lifetime estimation
// (the basis for §V's 17-day eviction proposal), and the
// synchronized-departure rates whose doubling between 2019 and 2020 the
// paper identifies as the dominant cause of the synchronization drop.
package churn

import (
	"fmt"
	"net/netip"
	"strings"
	"time"

	"repro/internal/netgen"
	"repro/internal/obs"
)

// Matrix is the binary presence matrix M of Algorithm 4: one row per
// unique reachable address, one column per network sample; M[i][j] = 1
// when address i was present in sample j. Rows are stored as packed
// bitsets.
type Matrix struct {
	// Addrs labels the rows.
	Addrs []netip.AddrPort
	// Times labels the columns.
	Times []time.Time
	// Interval is the sampling cadence.
	Interval time.Duration

	rows  [][]uint64
	words int
}

// Build constructs a matrix for the given addresses and sample times;
// present(i, j) reports whether address i is in sample j.
func Build(addrs []netip.AddrPort, times []time.Time, interval time.Duration,
	present func(i, j int) bool) *Matrix {
	m := &Matrix{
		Addrs:    addrs,
		Times:    times,
		Interval: interval,
		words:    (len(times) + 63) / 64,
	}
	m.rows = make([][]uint64, len(addrs))
	for i := range m.rows {
		m.rows[i] = make([]uint64, m.words)
		for j := range times {
			if present(i, j) {
				m.rows[i][j/64] |= 1 << (j % 64)
			}
		}
	}
	return m
}

// FromUniverse samples a synthetic universe's reachable stations at the
// given cadence over its whole horizon. Session lists are walked with a
// cursor, so the cost is O(rows × columns).
func FromUniverse(u *netgen.Universe, interval time.Duration) *Matrix {
	p := u.Params
	var times []time.Time
	for t := p.Epoch; t.Before(u.End()); t = t.Add(interval) {
		times = append(times, t)
	}
	m := &Matrix{
		Times:    times,
		Interval: interval,
		words:    (len(times) + 63) / 64,
	}
	m.Addrs = make([]netip.AddrPort, len(u.Reachable))
	m.rows = make([][]uint64, len(u.Reachable))
	for i, s := range u.Reachable {
		m.Addrs[i] = s.Addr
		row := make([]uint64, m.words)
		cursor := 0
		for j, t := range times {
			for cursor < len(s.Sessions) && !s.Sessions[cursor].End.After(t) {
				cursor++
			}
			if cursor < len(s.Sessions) && s.Sessions[cursor].Contains(t) {
				row[j/64] |= 1 << (j % 64)
			}
		}
		m.rows[i] = row
	}
	return m
}

// Publish exports the matrix's §IV-D summary statistics as gauges into
// reg (churn.* names): row/column dimensions, the persistent-node count,
// the mean lifetime in seconds, and the mean arrival/departure rates per
// sampling interval (scaled ×1000 to fit the integer gauge). A nil
// registry is a no-op.
func (m *Matrix) Publish(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.Gauge("churn.matrix.rows").Set(int64(m.Rows()))
	reg.Gauge("churn.matrix.cols").Set(int64(m.Cols()))
	reg.Gauge("churn.persistent").Set(int64(m.PersistentCount()))
	reg.Gauge("churn.lifetime.mean.seconds").Set(int64(m.MeanLifetime() / time.Second))
	tr := m.Transitions()
	reg.Gauge("churn.departures.mean.x1000").Set(int64(tr.MeanDepartures() * 1000))
	reg.Gauge("churn.arrivals.mean.x1000").Set(int64(tr.MeanArrivals() * 1000))
}

// At reports M[i][j].
func (m *Matrix) At(i, j int) bool {
	return m.rows[i][j/64]&(1<<(j%64)) != 0
}

// Rows returns the number of unique addresses.
func (m *Matrix) Rows() int { return len(m.Addrs) }

// Cols returns the number of samples.
func (m *Matrix) Cols() int { return len(m.Times) }

// RowOnes returns the number of present samples for row i.
func (m *Matrix) RowOnes(i int) int {
	total := 0
	for _, w := range m.rows[i] {
		total += popcount(w)
	}
	return total
}

// popcount counts set bits.
func popcount(x uint64) int {
	count := 0
	for x != 0 {
		x &= x - 1
		count++
	}
	return count
}

// ColOnes returns the number of present addresses in sample j.
func (m *Matrix) ColOnes(j int) int {
	total := 0
	word, bit := j/64, uint(j%64)
	for i := range m.rows {
		if m.rows[i][word]&(1<<bit) != 0 {
			total++
		}
	}
	return total
}

// PersistentCount returns the number of rows present in every sample —
// Figure 12's end-to-end horizontal lines (paper: 3,034).
func (m *Matrix) PersistentCount() int {
	if m.Cols() == 0 {
		return 0
	}
	count := 0
	for i := range m.rows {
		if m.RowOnes(i) == m.Cols() {
			count++
		}
	}
	return count
}

// MeanLifetime returns the mean cumulative presence per unique address —
// the paper's "average network lifetime" (measured 16.6 days), which §V
// proposes as the tried-table eviction horizon.
func (m *Matrix) MeanLifetime() time.Duration {
	if m.Rows() == 0 {
		return 0
	}
	// Sum in float64: 30K rows × 60 days of nanoseconds overflows int64.
	var totalIntervals float64
	for i := range m.rows {
		totalIntervals += float64(m.RowOnes(i))
	}
	mean := totalIntervals / float64(m.Rows())
	return time.Duration(mean * float64(m.Interval))
}

// Transitions counts per-column-pair state changes: departures are
// 1→0 transitions between consecutive samples, arrivals 0→1 — the
// Figure 13 observable when the matrix is sampled daily.
type Transitions struct {
	// Times labels each pair (the later sample's time).
	Times []time.Time
	// Departures and Arrivals per pair.
	Departures []int
	Arrivals   []int
}

// Transitions computes arrival/departure counts between consecutive
// samples.
func (m *Matrix) Transitions() *Transitions {
	cols := m.Cols()
	if cols < 2 {
		return &Transitions{}
	}
	tr := &Transitions{
		Times:      make([]time.Time, cols-1),
		Departures: make([]int, cols-1),
		Arrivals:   make([]int, cols-1),
	}
	for j := 1; j < cols; j++ {
		tr.Times[j-1] = m.Times[j]
		prevWord, prevBit := (j-1)/64, uint((j-1)%64)
		curWord, curBit := j/64, uint(j%64)
		for i := range m.rows {
			prev := m.rows[i][prevWord]&(1<<prevBit) != 0
			cur := m.rows[i][curWord]&(1<<curBit) != 0
			switch {
			case prev && !cur:
				tr.Departures[j-1]++
			case !prev && cur:
				tr.Arrivals[j-1]++
			}
		}
	}
	return tr
}

// MeanDepartures returns the average per-pair departure count.
func (t *Transitions) MeanDepartures() float64 {
	if len(t.Departures) == 0 {
		return 0
	}
	sum := 0
	for _, d := range t.Departures {
		sum += d
	}
	return float64(sum) / float64(len(t.Departures))
}

// MeanArrivals returns the average per-pair arrival count.
func (t *Transitions) MeanArrivals() float64 {
	if len(t.Arrivals) == 0 {
		return 0
	}
	sum := 0
	for _, a := range t.Arrivals {
		sum += a
	}
	return float64(sum) / float64(len(t.Arrivals))
}

// SyncedDepartures counts, per sampling interval, reachable stations that
// were synchronized (online past their IBD window) and absent at the next
// sample — the paper's §IV-D metric, measured at 10-minute cadence
// against the Bitnodes feed (3.9/10 min in 2019, 7.6/10 min in 2020).
// It returns the mean count per interval.
func SyncedDepartures(u *netgen.Universe, interval time.Duration) float64 {
	p := u.Params
	var samples int
	var departures int
	for t := p.Epoch; t.Add(interval).Before(u.End()); t = t.Add(interval) {
		next := t.Add(interval)
		for _, s := range u.Reachable {
			if s.SyncedAt(t, p) && !s.OnlineAt(next) {
				departures++
			}
		}
		samples++
	}
	if samples == 0 {
		return 0
	}
	return float64(departures) / float64(samples)
}

// Render draws the matrix as ASCII art (rows downsampled to maxRows,
// columns to maxCols), '#' marking presence — a terminal rendering of
// Figure 12.
func (m *Matrix) Render(maxRows, maxCols int) string {
	if m.Rows() == 0 || m.Cols() == 0 {
		return "(empty matrix)"
	}
	if maxRows <= 0 {
		maxRows = 40
	}
	if maxCols <= 0 {
		maxCols = 80
	}
	rowStep := (m.Rows() + maxRows - 1) / maxRows
	colStep := (m.Cols() + maxCols - 1) / maxCols
	var b strings.Builder
	fmt.Fprintf(&b, "presence matrix: %d addresses x %d samples (cell = %dx%d)\n",
		m.Rows(), m.Cols(), rowStep, colStep)
	for i := 0; i < m.Rows(); i += rowStep {
		for j := 0; j < m.Cols(); j += colStep {
			present := false
			for ii := i; ii < i+rowStep && ii < m.Rows() && !present; ii++ {
				for jj := j; jj < j+colStep && jj < m.Cols(); jj++ {
					if m.At(ii, jj) {
						present = true
						break
					}
				}
			}
			if present {
				b.WriteByte('#')
			} else {
				b.WriteByte('.')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
