package par

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkers(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Fatalf("Workers(3) = %d", got)
	}
	if got := Workers(0); got < 1 {
		t.Fatalf("Workers(0) = %d, want >= 1", got)
	}
	if got := Workers(-2); got < 1 {
		t.Fatalf("Workers(-2) = %d, want >= 1", got)
	}
}

// TestForEachCoversAllIndices checks every index runs exactly once, for
// both the sequential and the pooled path.
func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 4, 64} {
		const n = 100
		var mu sync.Mutex
		seen := make(map[int]int)
		err := ForEach(context.Background(), workers, n, func(_ context.Context, i int) error {
			mu.Lock()
			seen[i]++
			mu.Unlock()
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(seen) != n {
			t.Fatalf("workers=%d: ran %d distinct indices, want %d", workers, len(seen), n)
		}
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

// TestForEachDeterministicResults fills an index-addressed slice in
// parallel and checks it matches the sequential fill.
func TestForEachDeterministicResults(t *testing.T) {
	const n = 50
	want := make([]int, n)
	for i := range want {
		want[i] = i * i
	}
	for _, workers := range []int{1, 7} {
		got := make([]int, n)
		if err := ForEach(context.Background(), workers, n, func(_ context.Context, i int) error {
			got[i] = i * i
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: got[%d] = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

// TestForEachRealErrorBeatsCancellation checks the deterministic error
// choice: the real failure is reported, not the context.Canceled noise
// from the jobs it interrupted.
func TestForEachRealErrorBeatsCancellation(t *testing.T) {
	errA := errors.New("a")
	for trial := 0; trial < 20; trial++ {
		err := ForEach(context.Background(), 4, 8, func(jobCtx context.Context, i int) error {
			if i == 1 {
				return errA
			}
			// Everyone else blocks until the failure cancels the pool and
			// surfaces a cancellation error, which must not mask errA.
			<-jobCtx.Done()
			return jobCtx.Err()
		})
		if !errors.Is(err, errA) {
			t.Fatalf("trial %d: got %v, want %v", trial, err, errA)
		}
	}
}

// TestForEachParentCancellation checks a cancelled parent context wins
// over job errors and stops the loop promptly.
func TestForEachParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- ForEach(ctx, 2, 1000, func(jobCtx context.Context, i int) error {
			started.Add(1)
			select {
			case <-jobCtx.Done():
				return jobCtx.Err()
			case <-release:
				return nil
			}
		})
	}()
	for started.Load() < 2 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("got %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ForEach did not return after cancellation")
	}
	if n := started.Load(); n >= 1000 {
		t.Fatalf("all %d jobs started despite cancellation", n)
	}
	close(release)
}

// TestForEachSequentialPreCancelled checks the workers==1 fast path
// still honours an already-cancelled context.
func TestForEachSequentialPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := 0
	err := ForEach(ctx, 1, 10, func(context.Context, int) error { ran++; return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if ran != 0 {
		t.Fatalf("%d jobs ran under a cancelled context", ran)
	}
}

// TestForEachRecoversPanics checks a panicking job surfaces as a
// *PanicError carrying the job index and a stack, on both the
// sequential and the pooled path, instead of crashing the process.
func TestForEachRecoversPanics(t *testing.T) {
	for _, workers := range []int{1, 4} {
		err := ForEach(context.Background(), workers, 8, func(_ context.Context, i int) error {
			if i == 3 {
				panic("boom")
			}
			return nil
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: got %v (%T), want *PanicError", workers, err, err)
		}
		if pe.Index != 3 {
			t.Errorf("workers=%d: Index = %d, want 3", workers, pe.Index)
		}
		if pe.Value != "boom" {
			t.Errorf("workers=%d: Value = %v, want boom", workers, pe.Value)
		}
		if len(pe.Stack) == 0 || !strings.Contains(string(pe.Stack), "par_test.go") {
			t.Errorf("workers=%d: stack missing panic site:\n%s", workers, pe.Stack)
		}
		if !strings.Contains(err.Error(), "job 3 panicked: boom") {
			t.Errorf("workers=%d: Error() = %q", workers, err.Error())
		}
	}
}

// TestForEachPanicBeatsInducedCancellation checks a panic is selected
// like a real error: jobs interrupted by the panic-triggered
// cancellation do not mask it.
func TestForEachPanicBeatsInducedCancellation(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		err := ForEach(context.Background(), 4, 8, func(jobCtx context.Context, i int) error {
			if i == 1 {
				panic(fmt.Sprintf("trial %d", trial))
			}
			<-jobCtx.Done()
			return jobCtx.Err()
		})
		var pe *PanicError
		if !errors.As(err, &pe) || pe.Index != 1 {
			t.Fatalf("trial %d: got %v, want *PanicError at index 1", trial, err)
		}
	}
}

// TestReplicateRecoversPanics checks the replication fan-out inherits
// panic containment.
func TestReplicateRecoversPanics(t *testing.T) {
	err := Replicate(context.Background(), 3, func(_ context.Context, rep int) error {
		if rep == 2 {
			panic(errors.New("replication fault"))
		}
		return nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Index != 2 {
		t.Fatalf("got %v, want *PanicError at index 2", err)
	}
}

func TestReplicate(t *testing.T) {
	const n = 5
	got := make([]int64, n)
	if err := Replicate(context.Background(), n, func(_ context.Context, rep int) error {
		got[rep] = int64(rep) * 7919
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for rep := range got {
		if got[rep] != int64(rep)*7919 {
			t.Fatalf("rep %d slot = %d", rep, got[rep])
		}
	}
	if err := Replicate(context.Background(), 0, func(context.Context, int) error {
		t.Fatal("fn called for n=0")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
