// Package par is the deterministic fan-out engine shared by the core
// Runner and the analysis replication loops. It is a leaf package (no
// repo-internal imports) so both internal/core and internal/analysis can
// use it without an import cycle.
//
// Determinism contract: par schedules work concurrently but never
// changes *what* each job computes or *how* results are ordered. Every
// job receives its index; callers derive per-job seeds from the index
// and write results into index-addressed slots, so the merged output is
// byte-identical whatever the worker count.
package par

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Workers normalises a worker-count knob: n when positive, otherwise
// GOMAXPROCS. Zero and negative values mean "use all available cores".
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// PanicError is a worker panic converted into an error by ForEach or
// Replicate. It carries the panicking job's index, the recovered value,
// and the goroutine stack at the panic site, so a service layer can
// report a structured failure while the process keeps running.
type PanicError struct {
	// Index is the job index whose fn panicked.
	Index int
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

// Error renders the panic with its job index and stack.
func (e *PanicError) Error() string {
	return fmt.Sprintf("par: job %d panicked: %v\n%s", e.Index, e.Value, e.Stack)
}

// safeCall invokes fn(ctx, i), converting a panic into a *PanicError so
// one crashing job cannot take down the pool (or, behind a server, the
// process). The stack is captured at recovery time, inside the
// panicking goroutine, so it points at the faulting experiment code.
func safeCall(ctx context.Context, i int, fn func(ctx context.Context, i int) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Index: i, Value: r, Stack: debug.Stack()}
		}
	}()
	return fn(ctx, i)
}

// ForEach runs fn(ctx, i) for every i in [0, n) on a pool of workers
// goroutines. Indices are dispatched in order through an atomic counter,
// so with workers == 1 the loop is exactly sequential.
//
// The first failure cancels the shared context so in-flight jobs can
// stop early; undispatched indices are skipped. The returned error is
// deterministic: if the parent context was cancelled, ctx.Err() wins;
// otherwise the real (non-context-cancellation) error with the lowest
// index is returned, so the same inputs yield the same error whatever
// order the workers happened to fail in. A panicking fn does not crash
// the process: it is recovered into a *PanicError carrying the job
// index and stack, and selected like any other job error.
func ForEach(ctx context.Context, workers, n int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := safeCall(ctx, i, fn); err != nil {
				return err
			}
		}
		return nil
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		next atomic.Int64
		wg   sync.WaitGroup
		mu   sync.Mutex
		errs = make(map[int]error)
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if runCtx.Err() != nil {
					return
				}
				if err := safeCall(runCtx, i, fn); err != nil {
					mu.Lock()
					errs[i] = err
					mu.Unlock()
					cancel()
				}
			}
		}()
	}
	wg.Wait()

	if err := ctx.Err(); err != nil {
		return err
	}
	return firstError(errs)
}

// firstError picks the lowest-index error, preferring real failures over
// the context.Canceled noise that cancel-on-first-error induces in the
// jobs that were already in flight.
func firstError(errs map[int]error) error {
	best, bestReal := -1, -1
	for i, err := range errs {
		if best < 0 || i < best {
			best = i
		}
		if !errors.Is(err, context.Canceled) && (bestReal < 0 || i < bestReal) {
			bestReal = i
		}
	}
	switch {
	case bestReal >= 0:
		return errs[bestReal]
	case best >= 0:
		return errs[best]
	default:
		return nil
	}
}

// Replicate runs fn(ctx, rep) for every replication in [0, n)
// concurrently, one goroutine per replication. Replication counts are
// small (the paper's sweeps use 3-5 paired seeds), so a bounded pool
// would only serialise them; full fan-out also guarantees the race
// detector sees real concurrency even on single-core hosts. Error and
// panic-recovery semantics match ForEach.
func Replicate(ctx context.Context, n int, fn func(ctx context.Context, rep int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	return ForEach(ctx, n, n, fn)
}
