#!/usr/bin/env bash
# Intervention-grid driver for cmd/reprod: sweeps the fig_interv policy
# axis cell-by-cell through the reproduce service, one restricted spec
# (stock versus one policy set) per POST, and collects the reports.
#
# Each POST is an independent cache entry (the policies field is part of
# the spec key), so a partially completed sweep resumes for free: cells
# that already ran come back as cache hits and only the missing ones
# execute. The driver verifies exactly that — a second pass over the
# same cells must be all hits with zero new executions.
#
# Usage:
#   ./scripts/interv_grid.sh                       # boot a service, sweep, tear down
#   REPROD_URL=http://host:8080 ./scripts/interv_grid.sh   # sweep an existing service
#
# Tunables (env): SEED (default 7), NETSIZE (default 40), OUT (report dir).
set -euo pipefail

SEED="${SEED:-7}"
NETSIZE="${NETSIZE:-40}"
OUT="${OUT:-interv_grid_out}"

# One cell per policy set: the service runs stock versus this set under
# both churn regimes and both population mixes. The stock cell itself is
# the "policies":"stock" spec (a 1-set grid).
SETS=(
  stock
  tried-only-addr
  horizon-17d
  priority-relay
  unreachable-tx-relay
  churn-resilient-peering
  tried-only-addr+horizon-17d+priority-relay
)

tmp=$(mktemp -d)
pid=""
cleanup() {
  [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
  rm -rf "$tmp"
}
trap cleanup EXIT

base="${REPROD_URL:-}"
if [ -z "$base" ]; then
  echo "--- build + start a local service"
  go build -o "$tmp/reprod" ./cmd/reprod
  "$tmp/reprod" -addr 127.0.0.1:0 -cache "$tmp/cache" \
    >"$tmp/stdout.log" 2>"$tmp/stderr.log" &
  pid=$!
  for _ in $(seq 1 100); do
    base=$(sed -n 's#^reprod listening on \(http://[^ ]*\).*#\1#p' "$tmp/stdout.log")
    [ -n "$base" ] && break
    kill -0 "$pid" 2>/dev/null || { echo "server died at startup"; cat "$tmp/stderr.log"; exit 1; }
    sleep 0.1
  done
  [ -n "$base" ] || { echo "server never printed its ready line"; exit 1; }
fi
echo "sweeping against $base"
curl -fsS "$base/readyz" >/dev/null

mkdir -p "$OUT"
executions() {
  curl -fsS "$base/metrics" | awk '$1 == "reprod_runs_executed" {print $2}'
}
before=$(executions)

echo "--- pass 1: execute every cell"
for set in "${SETS[@]}"; do
  spec=$(printf '{"id":"fig_interv","quick":true,"seed":%s,"netsize":%s,"policies":"%s"}' \
    "$SEED" "$NETSIZE" "$set")
  out="$OUT/cell_${set//+/_}.txt"
  echo "cell: $set"
  curl -fsS -X POST "$base/run" -d "$spec" -o "$out"
  grep -q '^== fig_interv — ' "$out" || { echo "cell $set: malformed report"; exit 1; }
done
after=$(executions)
ran=$((after - before))
echo "pass 1 done: $ran execution(s) for ${#SETS[@]} cells"

echo "--- pass 2: every cell is a cache hit"
for set in "${SETS[@]}"; do
  spec=$(printf '{"id":"fig_interv","quick":true,"seed":%s,"netsize":%s,"policies":"%s"}' \
    "$SEED" "$NETSIZE" "$set")
  hit=$(curl -fsS -D - -X POST "$base/run" -d "$spec" -o "$tmp/repeat.txt" |
    tr -d '\r' | awk 'tolower($1) == "x-reprod-cache:" {print $2}')
  [ "$hit" = "hit" ] || { echo "cell $set: X-Reprod-Cache = '$hit', want hit"; exit 1; }
  cmp "$tmp/repeat.txt" "$OUT/cell_${set//+/_}.txt" ||
    { echo "cell $set: cached artifact differs from pass 1"; exit 1; }
done
[ "$(executions)" = "$after" ] || { echo "pass 2 triggered new executions"; exit 1; }

if [ -n "$pid" ]; then
  kill -TERM "$pid"
  wait "$pid" || true
  pid=""
fi
echo "grid sweep complete: reports in $OUT/"
