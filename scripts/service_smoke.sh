#!/usr/bin/env bash
# Service smoke drill for cmd/reprod: boot the real binary, hit it over
# HTTP, and check the service contract end to end —
#
#   1. two concurrent identical specs produce byte-identical responses
#      and exactly ONE execution (singleflight + cache),
#   2. the served report is byte-identical to the reproduce CLI's stdout
#      for the same options,
#   3. a repeat request is a cache hit,
#   4. a forced selftest_crash run becomes a structured 500 (kind
#      "panic") and leaves a well-formed flight record on disk,
#   5. a cached run's manifest carries nonzero resource provenance and
#      the bundle HTML renders a Resources section,
#   6. SIGTERM drains cleanly (non-zero exit or a hung process fails
#      the drill) and flushes the cache index.
#
# Run from the repository root: ./scripts/service_smoke.sh
# On failure the flight-record directory is copied to ./smoke-flightrec
# so CI can upload it as a post-mortem artifact.
set -euo pipefail

SPEC='{"id":"fig7","quick":true,"seed":7}'

tmp=$(mktemp -d)
flight="$tmp/flightrec"
pid=""
cleanup() {
  status=$?
  [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
  if [ "$status" -ne 0 ] && [ -d "$flight" ]; then
    mkdir -p smoke-flightrec
    cp "$flight"/flightrec-*.json smoke-flightrec/ 2>/dev/null || true
  fi
  rm -rf "$tmp"
}
trap cleanup EXIT

echo "--- build"
go build -o "$tmp/reprod" ./cmd/reprod

echo "--- start"
"$tmp/reprod" -addr 127.0.0.1:0 -cache "$tmp/cache" -flightrec "$flight" \
  >"$tmp/stdout.log" 2>"$tmp/stderr.log" &
pid=$!

base=""
for _ in $(seq 1 100); do
  base=$(sed -n 's#^reprod listening on \(http://[^ ]*\).*#\1#p' "$tmp/stdout.log")
  [ -n "$base" ] && break
  kill -0 "$pid" 2>/dev/null || { echo "server died at startup"; cat "$tmp/stderr.log"; exit 1; }
  sleep 0.1
done
[ -n "$base" ] || { echo "server never printed its ready line"; exit 1; }
echo "serving at $base"

curl -fsS "$base/healthz" >/dev/null
curl -fsS "$base/readyz" >/dev/null

echo "--- two concurrent identical specs"
curl -fsS -X POST "$base/run" -d "$SPEC" -o "$tmp/a.txt" &
ca=$!
curl -fsS -X POST "$base/run" -d "$SPEC" -o "$tmp/b.txt" &
cb=$!
wait "$ca" "$cb"
cmp "$tmp/a.txt" "$tmp/b.txt" || { echo "concurrent responses differ"; exit 1; }

executed=$(curl -fsS "$base/metrics" | awk '$1 == "reprod_runs_executed" {print $2}')
[ "$executed" = "1" ] || { echo "reprod_runs_executed = $executed, want 1"; exit 1; }
echo "one execution, byte-identical responses"

echo "--- byte-identity against the reproduce CLI"
go run ./cmd/reproduce -id fig7 -quick -seed 7 >"$tmp/cli.txt" 2>/dev/null
cmp "$tmp/a.txt" "$tmp/cli.txt" || { echo "service report differs from CLI stdout"; exit 1; }

echo "--- repeat request is a cache hit"
curl -fsS -D "$tmp/hit.hdr" -X POST "$base/run" -d "$SPEC" -o /dev/null
hit=$(tr -d '\r' <"$tmp/hit.hdr" | awk 'tolower($1) == "x-reprod-cache:" {print $2}')
[ "$hit" = "hit" ] || { echo "X-Reprod-Cache = '$hit', want hit"; exit 1; }
fig7_key=$(tr -d '\r' <"$tmp/hit.hdr" | awk 'tolower($1) == "x-reprod-key:" {print $2}')
[ -n "$fig7_key" ] || { echo "no X-Reprod-Key on the cache hit"; exit 1; }

echo "--- resource provenance in the manifest and bundle HTML"
curl -fsS "$base/runs/$fig7_key" -o "$tmp/manifest.json"
grep -q '"peak_heap_bytes":[1-9]' "$tmp/manifest.json" ||
  { echo "manifest lacks nonzero peak_heap_bytes"; cat "$tmp/manifest.json"; exit 1; }
curl -fsS "$base/runs/$fig7_key/report.html" | grep -q '<h2>Resources</h2>' ||
  { echo "bundle HTML lacks the Resources section"; exit 1; }
# The text report (the determinism surface shared with the CLI) must
# stay free of resource data — already pinned by the cmp against the
# CLI above, restated here for the reader.

echo "--- estimator sweep: singleflight + cache"
EST_SPEC='{"id":"fig_est_pop","quick":true,"seed":7}'
curl -fsS -X POST "$base/run" -d "$EST_SPEC" -o "$tmp/ea.txt" &
ea=$!
curl -fsS -X POST "$base/run" -d "$EST_SPEC" -o "$tmp/eb.txt" &
eb=$!
wait "$ea" "$eb"
cmp "$tmp/ea.txt" "$tmp/eb.txt" || { echo "concurrent fig_est responses differ"; exit 1; }
executed=$(curl -fsS "$base/metrics" | awk '$1 == "reprod_runs_executed" {print $2}')
[ "$executed" = "2" ] || { echo "reprod_runs_executed = $executed, want 2 (fig7 + one fig_est)"; exit 1; }
hit=$(curl -fsS -D - -X POST "$base/run" -d "$EST_SPEC" -o /dev/null |
  tr -d '\r' | awk 'tolower($1) == "x-reprod-cache:" {print $2}')
[ "$hit" = "hit" ] || { echo "fig_est X-Reprod-Cache = '$hit', want hit"; exit 1; }
echo "one fig_est execution, byte-identical responses, repeat is a cache hit"

echo "--- intervention grid: 2-cell restricted sweep through the cache"
# Two restricted fig_interv specs differing only in the policies field:
# they must execute separately (policies is part of the cache key), and
# each repeat must be a cache hit.
IV_STOCK='{"id":"fig_interv","quick":true,"seed":7,"netsize":24,"policies":"stock"}'
IV_TRIED='{"id":"fig_interv","quick":true,"seed":7,"netsize":24,"policies":"tried-only-addr+horizon-17d+priority-relay"}'
curl -fsS -X POST "$base/run" -d "$IV_STOCK" -o "$tmp/iv_stock.txt"
curl -fsS -X POST "$base/run" -d "$IV_TRIED" -o "$tmp/iv_tried.txt"
cmp -s "$tmp/iv_stock.txt" "$tmp/iv_tried.txt" && { echo "different policy sets served the same artifact"; exit 1; }
executed=$(curl -fsS "$base/metrics" | awk '$1 == "reprod_runs_executed" {print $2}')
[ "$executed" = "4" ] || { echo "reprod_runs_executed = $executed, want 4 (fig7 + fig_est + 2 fig_interv cells)"; exit 1; }
for spec in "$IV_STOCK" "$IV_TRIED"; do
  hit=$(curl -fsS -D - -X POST "$base/run" -d "$spec" -o /dev/null |
    tr -d '\r' | awk 'tolower($1) == "x-reprod-cache:" {print $2}')
  [ "$hit" = "hit" ] || { echo "fig_interv X-Reprod-Cache = '$hit', want hit"; exit 1; }
done
# Non-canonical policy spellings must be rejected, not fragment the cache.
code=$(curl -sS -o /dev/null -w '%{http_code}' -X POST "$base/run" \
  -d '{"id":"fig_interv","quick":true,"policies":"horizon-017d"}')
[ "$code" = "400" ] || { echo "non-canonical policies got HTTP $code, want 400"; exit 1; }
echo "two grid cells executed once each, repeats hit, non-canonical rejected"

echo "--- crash drill: selftest_crash → structured 500 + flight record"
code=$(curl -sS -o "$tmp/crash.json" -w '%{http_code}' -X POST "$base/run" \
  -d '{"id":"selftest_crash","quick":true}')
[ "$code" = "500" ] || { echo "selftest_crash got HTTP $code, want 500"; cat "$tmp/crash.json"; exit 1; }
grep -q '"kind":"panic"' "$tmp/crash.json" || { echo "crash error lacks kind=panic"; cat "$tmp/crash.json"; exit 1; }
rec=$(ls "$flight"/flightrec-*.json 2>/dev/null | head -1)
[ -n "$rec" ] || { echo "no flight record dumped"; exit 1; }
grep -q '"cause": "panic"' "$rec" || { echo "flight record cause is not panic"; cat "$rec"; exit 1; }
grep -q '"peak_heap_bytes"' "$rec" || { echo "flight record lacks resource watermarks"; exit 1; }
panics=$(curl -fsS "$base/metrics" | awk '$1 == "reprod_runs_panics" {print $2}')
[ "$panics" = "1" ] || { echo "reprod_runs_panics = $panics, want 1"; exit 1; }
# The crash is contained: the server still serves, per-route SLO
# metrics are live, and the proc.* resource gauges are exported.
curl -fsS "$base/healthz" >/dev/null
metrics=$(curl -fsS "$base/metrics")
echo "$metrics" | grep -q '^reprod_http_run_requests ' || { echo "missing reprod_http_run_requests"; exit 1; }
echo "$metrics" | grep -q '^proc_heap_alloc_bytes ' || { echo "missing proc_heap_alloc_bytes"; exit 1; }
echo "crash contained, flight record well-formed, SLO metrics live"

echo "--- graceful drain on SIGTERM"
kill -TERM "$pid"
drained=1
for _ in $(seq 1 100); do
  if ! kill -0 "$pid" 2>/dev/null; then drained=0; break; fi
  sleep 0.1
done
[ "$drained" = 0 ] || { echo "server did not exit within 10s of SIGTERM"; exit 1; }
wait "$pid" || { echo "server exited non-zero on drain"; cat "$tmp/stderr.log"; exit 1; }
pid=""
grep -q "drained cleanly" "$tmp/stderr.log" || { echo "no clean-drain line"; cat "$tmp/stderr.log"; exit 1; }
[ -f "$tmp/cache/index.json" ] || { echo "drain did not flush the cache index"; exit 1; }

echo "service smoke drill PASSED"
