// Relay-policy ablation (§IV-C and §V): the same network workload under
// Bitcoin Core's round-robin message scheduling, the idealized lock-step
// broadcast of the theoretical models, and the paper's proposed
// priority-outbound block relay.
//
//	go run ./examples/relaypolicy
package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/analysis"
	"repro/internal/node"
	"repro/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "relaypolicy:", err)
		os.Exit(1)
	}
}

func run() error {
	policies := []node.RelayPolicy{node.RoundRobin, node.PriorityOutbound, node.Broadcast}

	fmt.Println("relay-policy ablation: 50 nodes, 2 virtual hours, heavy tx congestion")
	fmt.Printf("%-18s %10s %10s %10s %10s %12s\n",
		"policy", "blk mean", "blk p99", "blk max", "tx max", "observed sync")

	for _, policy := range policies {
		res, err := analysis.RunPropagation(analysis.PropagationConfig{
			Seed:                    9,
			NumReachable:            50,
			Duration:                2 * time.Hour,
			TxPerBlock:              1500,
			CompactBlocks:           true,
			RelayPolicy:             policy,
			ChurnDeparturesPer10Min: 1.5,
		})
		if err != nil {
			return fmt.Errorf("%v: %w", policy, err)
		}
		blocks := analysis.SummarizeRelays(res.BlockRelays)
		txs := analysis.SummarizeRelays(res.TxRelays)
		fmt.Printf("%-18s %9.2fs %9.2fs %9.2fs %9.2fs %11.1f%%\n",
			policy, blocks.Mean, blocks.P99, blocks.Max, txs.Max,
			100*stats.Mean(res.ObservedSyncSamples))
	}

	fmt.Println("\nexpectation (paper §IV-C/§V): under round-robin, block announcements")
	fmt.Println("queue behind pending transaction traffic and reach the last connection")
	fmt.Println("late (the tail); the §V priority relay lets blocks jump those queues,")
	fmt.Println("collapsing the block tail at a small cost to transaction tails;")
	fmt.Println("broadcast is the theoretical lower bound the literature assumes.")
	return nil
}
