// Relay-policy ablation (§IV-C and §V): the same network workload under
// Bitcoin Core's round-robin message scheduling, the idealized lock-step
// broadcast of the theoretical models, and the paper's proposed
// priority-outbound block relay. The three policies simulate
// concurrently (par.Replicate); rows print in policy order either way.
//
//	go run ./examples/relaypolicy
package main

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"time"

	"repro/internal/analysis"
	"repro/internal/node"
	"repro/internal/par"
	"repro/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "relaypolicy:", err)
		os.Exit(1)
	}
}

func run() error {
	policies := []node.RelayPolicy{node.RoundRobin, node.PriorityOutbound, node.Broadcast}

	fmt.Println("relay-policy ablation: 50 nodes, 2 virtual hours, heavy tx congestion")
	fmt.Printf("%-18s %10s %10s %10s %10s %12s\n",
		"policy", "blk mean", "blk p99", "blk max", "tx max", "observed sync")

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancel()

	rows := make([]string, len(policies))
	err := par.Replicate(ctx, len(policies), func(ctx context.Context, i int) error {
		policy := policies[i]
		res, err := analysis.RunPropagation(ctx, analysis.PropagationConfig{
			Seed:                    9,
			NumReachable:            50,
			Duration:                2 * time.Hour,
			TxPerBlock:              1500,
			CompactBlocks:           true,
			RelayPolicy:             policy,
			ChurnDeparturesPer10Min: 1.5,
		})
		if err != nil {
			return fmt.Errorf("%v: %w", policy, err)
		}
		blocks := analysis.SummarizeRelays(res.BlockRelays)
		txs := analysis.SummarizeRelays(res.TxRelays)
		rows[i] = fmt.Sprintf("%-18s %9.2fs %9.2fs %9.2fs %9.2fs %11.1f%%",
			policy, blocks.Mean, blocks.P99, blocks.Max, txs.Max,
			100*stats.Mean(res.ObservedSyncSamples))
		return nil
	})
	if err != nil {
		return err
	}
	for _, row := range rows {
		fmt.Println(row)
	}

	fmt.Println("\nexpectation (paper §IV-C/§V): under round-robin, block announcements")
	fmt.Println("queue behind pending transaction traffic and reach the last connection")
	fmt.Println("late (the tail); the §V priority relay lets blocks jump those queues,")
	fmt.Println("collapsing the block tail at a small cost to transaction tails;")
	fmt.Println("broadcast is the theoretical lower bound the literature assumes.")
	return nil
}
