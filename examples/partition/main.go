// Partition study, in two acts.
//
// Act 1 (§IV-A1): how many autonomous systems must an adversary hijack
// to isolate half the Bitcoin network, and how does the answer change
// once unreachable and responsive nodes are counted?
//
// Act 2 (robustness extension): an actual partition, executed. A small
// mesh of full nodes is split with the fault-injection layer while one
// side keeps mining; the two sides diverge, the partition heals, and the
// node-side recovery machinery (keepalive, stall eviction, header
// resync) pulls every node back to the common tip.
//
//	go run ./examples/partition
package main

import (
	"fmt"
	"net/netip"
	"os"
	"time"

	"repro/internal/asmap"
	"repro/internal/chain"
	"repro/internal/faults"
	"repro/internal/netgen"
	"repro/internal/node"
	"repro/internal/simnet"
	"repro/internal/wire"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "partition:", err)
		os.Exit(1)
	}
}

func run() error {
	if err := hijackBudget(); err != nil {
		return err
	}
	fmt.Println()
	return livePartition()
}

// hijackBudget is the §IV-A1 AS-level study.
func hijackBudget() error {
	// Generate the synthetic universe at 30% of the paper's scale.
	u, err := netgen.Generate(netgen.DefaultParams(7, 0.30))
	if err != nil {
		return err
	}

	reachable := asmap.NewCensus()
	responsive := asmap.NewCensus()
	unreachable := asmap.NewCensus()
	for _, s := range u.Reachable {
		reachable.Add(s.ASN)
	}
	for _, s := range u.Unreachable {
		unreachable.Add(s.ASN)
		if s.Class == netgen.ClassResponsive {
			responsive.Add(s.ASN)
		}
	}

	classes := []struct {
		name   string
		census *asmap.Census
		paper  string
	}{
		{"reachable", reachable, "25 ASes for 50% (paper)"},
		{"unreachable", unreachable, "36 ASes for 50% (paper)"},
		{"responsive", responsive, "24 ASes for 50% (paper)"},
	}

	fmt.Println("hijack budget: ASes needed to isolate a fraction of each population")
	fmt.Printf("%-12s %8s %8s %8s %8s   %s\n", "class", "25%", "50%", "75%", "90%", "reference")
	for _, c := range classes {
		fmt.Printf("%-12s %8d %8d %8d %8d   %s\n",
			c.name,
			c.census.CoverageCount(0.25),
			c.census.CoverageCount(0.50),
			c.census.CoverageCount(0.75),
			c.census.CoverageCount(0.90),
			c.paper,
		)
	}

	// The paper's AS4134 observation: a small AS by reachable share can
	// be a prime target once responsive nodes are counted.
	fmt.Println("\nAS4134 (China Telecom) share by class (paper: 0.76% / 5.34% / 6.18%):")
	fmt.Printf("  reachable   %.2f%%\n", reachable.Share(4134))
	fmt.Printf("  unreachable %.2f%%\n", unreachable.Share(4134))
	fmt.Printf("  responsive  %.2f%%\n", responsive.Share(4134))

	fmt.Println("\ntop 5 ASes per class:")
	for _, c := range classes {
		fmt.Printf("  %s:\n", c.name)
		for i, s := range c.census.TopN(5) {
			fmt.Printf("    %d. AS%-6d %6d nodes (%.2f%%)\n", i+1, s.ASN, s.Count, s.Pct)
		}
	}
	return nil
}

// livePartition executes a partition against a running mesh and shows
// the divergence and the recovery.
func livePartition() error {
	const (
		numNodes  = 8
		majority  = 5 // nodes 0..4 stay with the miner
		warmup    = 3 * time.Minute
		severed   = 6 * time.Minute
		recovery  = 12 * time.Minute
		blockTick = time.Minute
	)

	genesis := chain.GenesisBlock("partition-example")
	net := simnet.New(simnet.Config{Seed: 7})
	inj := faults.New(net, faults.Config{Seed: 7})
	sched := net.Scheduler()

	addrs := make([]netip.AddrPort, numNodes)
	for i := range addrs {
		addrs[i] = netip.AddrPortFrom(netip.AddrFrom4([4]byte{10, 9, 0, byte(i + 1)}), 8333)
	}
	for _, self := range addrs {
		var seeds []wire.NetAddress
		for _, a := range addrs {
			if a != self {
				seeds = append(seeds, wire.NetAddress{
					Addr: a, Services: wire.SFNodeNetwork, Timestamp: net.Now(),
				})
			}
		}
		net.AddFullNode(node.Config{
			Self:      wire.NetAddress{Addr: self, Services: wire.SFNodeNetwork},
			Reachable: true,
			Genesis:   genesis,
			SeedAddrs: seeds,
		}).Start()
	}
	miner := addrs[0]

	mining := true
	var mine func()
	mine = func() {
		if !mining {
			return
		}
		if h := net.Host(miner); h.Online() && h.Node() != nil {
			_, _ = h.Node().MineBlock(0)
		}
		sched.After(blockTick, mine)
	}
	sched.After(blockTick, mine)

	heights := func() []int32 {
		out := make([]int32, len(addrs))
		for i, a := range addrs {
			_, out[i] = net.Host(a).Node().Chain().Tip()
		}
		return out
	}

	fmt.Println("live partition drill: 8-node mesh, miner on the majority side")
	sched.RunFor(warmup)
	fmt.Printf("  t=%-4s heights %v  (mesh warmed up)\n", "3m", heights())

	inj.Partition(addrs[:majority], addrs[majority:])
	sched.RunFor(severed)
	fmt.Printf("  t=%-4s heights %v  (partitioned: minority side starved)\n", "9m", heights())

	inj.Heal()
	sched.RunFor(recovery)
	mining = false
	sched.RunFor(2 * time.Minute)

	hs := heights()
	converged := true
	for _, h := range hs {
		if h != hs[0] {
			converged = false
		}
	}
	synced := 0
	for _, a := range addrs {
		if net.Host(a).Node().IsSynced() {
			synced++
		}
	}
	fmt.Printf("  t=%-4s heights %v  (healed)\n", "23m", hs)
	fmt.Printf("  converged: %v, %d/%d nodes IsSynced\n", converged, synced, len(addrs))
	fmt.Printf("  fault counters: %s\n", inj.CountersString())
	if !converged {
		return fmt.Errorf("mesh failed to re-converge after heal (heights %v)", hs)
	}
	return nil
}
