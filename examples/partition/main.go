// Partition-attack study (§IV-A1): how many autonomous systems must an
// adversary hijack to isolate half the Bitcoin network, and how does the
// answer change once unreachable and responsive nodes are counted?
//
//	go run ./examples/partition
package main

import (
	"fmt"
	"os"

	"repro/internal/asmap"
	"repro/internal/netgen"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "partition:", err)
		os.Exit(1)
	}
}

func run() error {
	// Generate the synthetic universe at 30% of the paper's scale.
	u, err := netgen.Generate(netgen.DefaultParams(7, 0.30))
	if err != nil {
		return err
	}

	reachable := asmap.NewCensus()
	responsive := asmap.NewCensus()
	unreachable := asmap.NewCensus()
	for _, s := range u.Reachable {
		reachable.Add(s.ASN)
	}
	for _, s := range u.Unreachable {
		unreachable.Add(s.ASN)
		if s.Class == netgen.ClassResponsive {
			responsive.Add(s.ASN)
		}
	}

	classes := []struct {
		name   string
		census *asmap.Census
		paper  string
	}{
		{"reachable", reachable, "25 ASes for 50% (paper)"},
		{"unreachable", unreachable, "36 ASes for 50% (paper)"},
		{"responsive", responsive, "24 ASes for 50% (paper)"},
	}

	fmt.Println("hijack budget: ASes needed to isolate a fraction of each population")
	fmt.Printf("%-12s %8s %8s %8s %8s   %s\n", "class", "25%", "50%", "75%", "90%", "reference")
	for _, c := range classes {
		fmt.Printf("%-12s %8d %8d %8d %8d   %s\n",
			c.name,
			c.census.CoverageCount(0.25),
			c.census.CoverageCount(0.50),
			c.census.CoverageCount(0.75),
			c.census.CoverageCount(0.90),
			c.paper,
		)
	}

	// The paper's AS4134 observation: a small AS by reachable share can
	// be a prime target once responsive nodes are counted.
	fmt.Println("\nAS4134 (China Telecom) share by class (paper: 0.76% / 5.34% / 6.18%):")
	fmt.Printf("  reachable   %.2f%%\n", reachable.Share(4134))
	fmt.Printf("  unreachable %.2f%%\n", unreachable.Share(4134))
	fmt.Printf("  responsive  %.2f%%\n", responsive.Share(4134))

	fmt.Println("\ntop 5 ASes per class:")
	for _, c := range classes {
		fmt.Printf("  %s:\n", c.name)
		for i, s := range c.census.TopN(5) {
			fmt.Printf("    %d. AS%-6d %6d nodes (%.2f%%)\n", i+1, s.ASN, s.Count, s.Pct)
		}
	}
	return nil
}
