// End-to-end crawl over real TCP: spin up wire-protocol servers and NAT
// stubs on loopback, run the paper's Algorithm 1 crawler and Algorithm 2
// scanner against them, and detect a planted malicious flooder — the
// whole measurement apparatus against genuine sockets.
//
//	go run ./examples/crawl
package main

import (
	"context"
	"fmt"
	"net/netip"
	"os"
	"time"

	"repro/internal/chain"
	"repro/internal/crawler"
	"repro/internal/node"
	"repro/internal/tcpnet"
	"repro/internal/wire"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "crawl:", err)
		os.Exit(1)
	}
}

func run() error {
	// Fabricate "unreachable" gossip addresses for the books.
	gossip := func(n, base int) []wire.NetAddress {
		out := make([]wire.NetAddress, n)
		for i := range out {
			out[i] = wire.NetAddress{
				Addr: netip.AddrPortFrom(
					netip.AddrFrom4([4]byte{172, 16, byte((base + i) >> 8), byte(base + i)}), 8333),
				Services:  wire.SFNodeNetwork,
				Timestamp: time.Now(),
			}
		}
		return out
	}

	// Three honest reachable servers and one malicious flooder.
	var servers []*tcpnet.Server
	for i := 0; i < 3; i++ {
		srv, err := tcpnet.NewServer(tcpnet.ServerConfig{
			Book: gossip(40, i*100),
		}, "127.0.0.1:0")
		if err != nil {
			return err
		}
		defer closeQuietly(srv.Close)
		servers = append(servers, srv)
	}
	evil, err := tcpnet.NewServer(tcpnet.ServerConfig{
		Book:     gossip(300, 1000),
		OmitSelf: true, // the flooder never advertises itself
	}, "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer closeQuietly(evil.Close)

	// Two NATed nodes running Bitcoin (answer probes with FIN).
	var stubs []*tcpnet.ResponsiveStub
	for i := 0; i < 2; i++ {
		stub, err := tcpnet.NewResponsiveStub("127.0.0.1:0")
		if err != nil {
			return err
		}
		defer closeQuietly(stub.Close)
		stubs = append(stubs, stub)
	}

	// --- Algorithm 1: the iterative GETADDR crawl -----------------------
	targets := []netip.AddrPort{
		servers[0].Addr(), servers[1].Addr(), servers[2].Addr(), evil.Addr(),
	}
	known := make(map[netip.AddrPort]struct{}, len(targets))
	for _, t := range targets {
		known[t] = struct{}{}
	}
	c := crawler.New(crawler.Config{}, &tcpnet.Dialer{})
	snap, err := c.Crawl(context.Background(), time.Now(), targets, known)
	if err != nil {
		return err
	}
	fmt.Printf("crawled %d reachable nodes over real TCP\n", len(snap.Connected))
	for _, t := range targets {
		rep := snap.Reports[t]
		fmt.Printf("  %v: %d addrs in %d rounds (self-advertised: %v)\n",
			t, rep.TotalSent, rep.Rounds, rep.SentOwnAddr)
	}
	fmt.Printf("collected %d unreachable addresses\n", len(snap.Unreachable))

	// The §IV-B heuristic: a node whose ADDR responses contain no
	// reachable address (not even itself) is flagged.
	for _, s := range snap.SuspectedMalicious(10) {
		fmt.Printf("flagged malicious flooder: %v (%d unreachable-only addresses)\n",
			s.Addr, s.UnreachableSent)
	}

	// --- Algorithm 2: the VER-probe scan --------------------------------
	probeTargets := []netip.AddrPort{
		servers[0].Addr(), stubs[0].Addr(), stubs[1].Addr(),
	}
	res, err := crawler.Scan(time.Now(), &tcpnet.Prober{}, probeTargets)
	if err != nil {
		return err
	}
	fmt.Printf("scan: probed %d, responsive %d, reachable %d\n",
		res.Probed, len(res.Responsive), len(res.ReachableSurprises))

	// --- Bonus: crawl a LIVE full node ----------------------------------
	// The same node state machine that powers the simulations, served
	// over a real socket, answers the same crawler.
	live, err := tcpnet.NewNodeServer(node.Config{
		Reachable: true,
		Genesis:   chain.GenesisBlock("crawl-example"),
		SeedAddrs: gossip(25, 5000),
	}, wire.SimNet, "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer closeQuietly(live.Close)
	liveSnap, err := c.Crawl(context.Background(), time.Now(), []netip.AddrPort{live.Addr()}, nil)
	if err != nil {
		return err
	}
	if rep := liveSnap.Reports[live.Addr()]; rep != nil && rep.Connected {
		fmt.Printf("live full node drained over TCP: %d addresses, self-advertised=%v\n",
			rep.TotalSent, rep.SentOwnAddr)
	}
	return nil
}

// closeQuietly defers a close whose error has nowhere useful to go.
func closeQuietly(close func() error) {
	_ = close()
}
