// Churn study (§IV-D): build the 60-day presence matrix (Figure 12),
// derive the daily join/leave series (Figure 13), and contrast
// synchronized-node departures between the 2019 and 2020 regimes.
//
//	go run ./examples/churnstudy
package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/churn"
	"repro/internal/netgen"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "churnstudy:", err)
		os.Exit(1)
	}
}

func run() error {
	const scale = 0.10
	u, err := netgen.Generate(netgen.DefaultParams(21, scale))
	if err != nil {
		return err
	}

	// Figure 12: the binary presence matrix at daily sampling.
	m := churn.FromUniverse(u, 24*time.Hour)
	fmt.Println(m.Render(32, 80))
	fmt.Printf("unique addresses:  %d (paper: 28,781 at full scale)\n", m.Rows())
	fmt.Printf("always present:    %d (paper: 3,034 at full scale)\n", m.PersistentCount())
	fmt.Printf("mean lifetime:     %.1f days (paper: 16.6 — the basis of the §V 17-day eviction)\n",
		m.MeanLifetime().Hours()/24)

	// Figure 13: daily transitions.
	tr := m.Transitions()
	fmt.Printf("daily departures:  %.0f mean (paper: ≈708, 8.6%% of the network)\n",
		tr.MeanDepartures())
	fmt.Printf("daily arrivals:    %.0f mean\n", tr.MeanArrivals())
	peakDep, peakDay := 0, 0
	for i, d := range tr.Departures {
		if d > peakDep {
			peakDep, peakDay = d, i+1
		}
	}
	fmt.Printf("peak departures:   %d on day %d\n", peakDep, peakDay)

	// Synchronized departures, 2019 vs 2020 (hourly cadence for speed).
	u19, err := netgen.Generate(netgen.Params2019(21, scale))
	if err != nil {
		return err
	}
	d19 := churn.SyncedDepartures(u19, time.Hour)
	d20 := churn.SyncedDepartures(u, time.Hour)
	fmt.Printf("\nsynchronized departures per hour: 2019 %.1f vs 2020 %.1f (ratio %.2f; paper: doubled)\n",
		d19, d20, d20/d19)
	return nil
}
