// Quickstart: build a small simulated Bitcoin network, mine a few blocks,
// and watch them propagate.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"net/netip"
	"os"
	"time"

	"repro/internal/chain"
	"repro/internal/node"
	"repro/internal/simnet"
	"repro/internal/wire"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// A simulated network with deterministic latencies.
	net := simnet.New(simnet.Config{
		Seed:    42,
		Latency: simnet.HashLatency(20*time.Millisecond, 80*time.Millisecond),
	})
	genesis := chain.GenesisBlock("quickstart")

	// Ten reachable nodes; each seeds its address manager with the first
	// node, so the topology self-assembles through ADDR gossip.
	const numNodes = 10
	hosts := make([]*simnet.Host, numNodes)
	first := netip.AddrPortFrom(netip.AddrFrom4([4]byte{10, 0, 0, 1}), 8333)
	for i := range hosts {
		self := netip.AddrPortFrom(netip.AddrFrom4([4]byte{10, 0, 0, byte(i + 1)}), 8333)
		cfg := node.Config{
			Self:      wire.NetAddress{Addr: self, Services: wire.SFNodeNetwork},
			Reachable: true,
			Genesis:   genesis,
		}
		if self != first {
			cfg.SeedAddrs = []wire.NetAddress{{
				Addr: first, Services: wire.SFNodeNetwork, Timestamp: net.Now(),
			}}
		}
		hosts[i] = net.AddFullNode(cfg)
		hosts[i].Start()
	}

	// Let the topology form for two virtual minutes.
	net.Scheduler().RunFor(2 * time.Minute)
	fmt.Println("topology after bootstrap:")
	for i, h := range hosts {
		out, in, _ := h.Node().ConnCounts()
		fmt.Printf("  node %2d: %d outbound, %d inbound (addrman knows %d addresses)\n",
			i+1, out, in, h.Node().AddrMan().Size())
	}

	// Mine five blocks on node 1 at 30-second intervals and watch the
	// whole network converge.
	for b := 1; b <= 5; b++ {
		net.Scheduler().After(0, func() {
			if _, err := hosts[0].Node().MineBlock(0); err != nil {
				fmt.Fprintln(os.Stderr, "mine:", err)
			}
		})
		net.Scheduler().RunFor(30 * time.Second)
		atTip := 0
		for _, h := range hosts {
			if h.Node().Chain().Height() == int32(b) {
				atTip++
			}
		}
		fmt.Printf("block %d mined: %d/%d nodes at the new tip after 30s\n",
			b, atTip, numNodes)
	}

	tipHash, tipHeight := hosts[0].Node().Chain().Tip()
	fmt.Printf("final chain: height %d, tip %s\n", tipHeight, tipHash)
	fmt.Printf("simulation executed %d events\n", net.Scheduler().Executed())
	return nil
}
