// Package repro is a full reproduction of "Root Cause Analyses for the
// Deteriorating Bitcoin Network Synchronization" (Saad, Chen, Mohaisen;
// IEEE ICDCS 2021).
//
// The paper is a measurement study of the live Bitcoin P2P network; this
// repository rebuilds the entire apparatus offline: the Bitcoin wire
// protocol and address manager, a full node state machine with Bitcoin
// Core's round-robin message scheduling, a discrete-event network
// simulator, the crawler and scanner of the paper's Algorithms 1–2, a
// calibrated synthetic population standing in for the live network, and
// the analysis pipelines that regenerate every figure and table in the
// evaluation.
//
// Start with the README for the architecture overview, DESIGN.md for the
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured results.
// The benchmarks in bench_test.go regenerate each figure/table:
//
//	go test -bench=. -benchmem
//
// or use the CLI:
//
//	go run ./cmd/reproduce -all
package repro
