package repro_test

// Benchmark harness: one benchmark per table and figure in the paper's
// evaluation. Each benchmark regenerates its figure/table through the
// internal/core experiment registry and reports the headline quantities
// as custom benchmark metrics, so `go test -bench=. -benchmem` produces a
// machine-readable paper-vs-measured record (see EXPERIMENTS.md for the
// curated comparison).
//
// The crawl-series experiments (fig3/4/5/8, table1, addrmix) share one
// memoized longitudinal study per (seed, scale), so the suite pays for
// the 60-experiment crawl once.

import (
	"context"
	"strconv"
	"testing"

	"repro/internal/core"
)

// benchOpts are the options used by every benchmark: reduced-scale
// populations (30% of the paper's network) and 120-node message-level
// simulations, which keep the full suite in the minutes range while
// preserving every qualitative shape.
var benchOpts = core.Options{Seed: 1, Scale: 0.30, NetSize: 120}

// runExperiment executes a registered experiment b.N times, reporting
// the selected metrics from the final run.
func runExperiment(b *testing.B, id string, metrics map[string]string) {
	b.Helper()
	exp, ok := core.ByID(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	var rep *core.Report
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = exp.Run(context.Background(), benchOpts)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
	b.StopTimer()
	for _, m := range rep.Metrics {
		unit, wanted := metrics[m.Name]
		if !wanted {
			continue
		}
		if v, err := strconv.ParseFloat(trimNumeric(m.Value), 64); err == nil {
			b.ReportMetric(v, unit)
		}
	}
}

// trimNumeric strips unit suffixes ("%", " s", "s") from a rendered
// metric value.
func trimNumeric(s string) string {
	end := len(s)
	for end > 0 {
		c := s[end-1]
		if (c >= '0' && c <= '9') || c == '.' || c == '-' {
			break
		}
		end--
	}
	return s[:end]
}

// BenchmarkFig1SyncKDE regenerates Figure 1: the synchronization
// distributions of the 2019 and 2020 regimes (paper: mean 72.02% vs
// 61.91%).
func BenchmarkFig1SyncKDE(b *testing.B) {
	runExperiment(b, "fig1", map[string]string{
		"2019 mean sync": "sync2019_pct",
		"2020 mean sync": "sync2020_pct",
	})
}

// BenchmarkFig3SeedSources regenerates Figure 3: seed databases,
// exclusions, and crawler connections.
func BenchmarkFig3SeedSources(b *testing.B) {
	runExperiment(b, "fig3", map[string]string{
		"bitnodes addresses": "bitnodes_addrs",
		"connected nodes":    "connected",
	})
}

// BenchmarkFig4UnreachableAddrs regenerates Figure 4: unreachable
// addresses per experiment and cumulative (paper: ≈195K and 694,696).
func BenchmarkFig4UnreachableAddrs(b *testing.B) {
	runExperiment(b, "fig4", map[string]string{
		"unique unreachable per experiment": "per_experiment",
		"cumulative unique unreachable":     "cumulative",
	})
}

// BenchmarkFig5ResponsiveNodes regenerates Figure 5: responsive nodes per
// experiment and cumulative (paper: ≈54K and 163,496).
func BenchmarkFig5ResponsiveNodes(b *testing.B) {
	runExperiment(b, "fig5", map[string]string{
		"responsive per experiment": "per_experiment",
		"cumulative responsive":     "cumulative",
	})
}

// BenchmarkTable1ASDistribution regenerates Table I: the AS censuses and
// hijack-coverage counts (paper: 25/36/24 ASes host 50%).
func BenchmarkTable1ASDistribution(b *testing.B) {
	runExperiment(b, "table1", map[string]string{
		"reachable: ASes hosting 50%":   "cover_reachable",
		"unreachable: ASes hosting 50%": "cover_unreachable",
		"responsive: ASes hosting 50%":  "cover_responsive",
	})
}

// BenchmarkFig6ConnStability regenerates Figure 6: outgoing connection
// stability over 260 seconds (paper: mean 6.67, below 8 for ≈60% of the
// time).
func BenchmarkFig6ConnStability(b *testing.B) {
	runExperiment(b, "fig6", map[string]string{
		"mean outgoing connections": "mean_conns",
		"time below 8 connections":  "below8_pct",
	})
}

// BenchmarkFig7ConnSuccess regenerates Figure 7: outgoing connection
// success rate (paper: 11.2%).
func BenchmarkFig7ConnSuccess(b *testing.B) {
	runExperiment(b, "fig7", map[string]string{
		"success rate": "success_pct",
	})
}

// BenchmarkFig8MaliciousPeers regenerates Figure 8: flooders of
// unreachable-only ADDR responses (paper: 73 nodes, 43 in AS3320).
func BenchmarkFig8MaliciousPeers(b *testing.B) {
	runExperiment(b, "fig8", map[string]string{
		"flagged nodes":           "flagged",
		"flagged nodes in AS3320": "in_as3320",
	})
}

// BenchmarkFig10BlockRelayDelay regenerates Figure 10: block relay delay
// to the last connection (paper: mean 1.39 s, max 17 s).
func BenchmarkFig10BlockRelayDelay(b *testing.B) {
	runExperiment(b, "fig10", map[string]string{
		"mean delay":                    "mean_s",
		"max delay (paper-size sample)": "max_s",
	})
}

// BenchmarkFig11TxRelayDelay regenerates Figure 11: transaction relay
// delay to the last connection (paper: mean 0.45 s, max 8 s).
func BenchmarkFig11TxRelayDelay(b *testing.B) {
	runExperiment(b, "fig11", map[string]string{
		"mean delay":  "mean_s",
		"p99.9 delay": "p999_s",
	})
}

// BenchmarkFig12ChurnMatrix regenerates Figure 12: the binary presence
// matrix (paper: 3,034 persistent of 28,781; 16.6-day mean lifetime).
func BenchmarkFig12ChurnMatrix(b *testing.B) {
	runExperiment(b, "fig12", map[string]string{
		"always-present nodes":      "persistent",
		"mean node lifetime (days)": "lifetime_days",
	})
}

// BenchmarkFig13DailyChurn regenerates Figure 13: daily arrivals and
// departures (paper: ≈708/day, 8.6%).
func BenchmarkFig13DailyChurn(b *testing.B) {
	runExperiment(b, "fig13", map[string]string{
		"mean daily departures": "departures",
		"daily departure share": "share_pct",
	})
}

// BenchmarkAddrComposition regenerates the §IV-A2 ADDR-composition
// scalars (paper: 14.9% reachable / 85.1% unreachable).
func BenchmarkAddrComposition(b *testing.B) {
	runExperiment(b, "addrmix", map[string]string{
		"reachable share": "reachable_pct",
	})
}

// BenchmarkResyncTime regenerates the §IV-D restart measurement (paper:
// 11 min 14 s to resynchronize).
func BenchmarkResyncTime(b *testing.B) {
	runExperiment(b, "resync", nil)
}

// BenchmarkSyncDepartures regenerates the §IV-D synchronized-departure
// contrast (paper: 3.9/10 min in 2019 vs 7.6/10 min in 2020).
func BenchmarkSyncDepartures(b *testing.B) {
	runExperiment(b, "syncdep", map[string]string{
		"2020/2019 ratio": "ratio",
	})
}

// BenchmarkRefinementAblation regenerates the §V refinement comparison
// (tried-only ADDR, 17-day horizon, priority relay vs stock).
func BenchmarkRefinementAblation(b *testing.B) {
	runExperiment(b, "ablation", nil)
}

// BenchmarkHijackPartition runs the §IV-A1 extension: a live AS-hijack
// partition over the Table I hosting distribution.
func BenchmarkHijackPartition(b *testing.B) {
	runExperiment(b, "hijack", map[string]string{
		"nodes isolated directly": "isolated_pct",
	})
}
