// Command reprod serves experiment reproductions over HTTP: clients
// POST an experiment spec and get the finished report back, backed by a
// crash-safe content-addressed artifact cache, bounded admission with
// explicit load-shedding, per-run deadlines, and panic isolation.
//
// Usage:
//
//	reprod [-addr 127.0.0.1:8344] [-cache reprod-cache]
//	       [-max-active 0] [-max-queue 64]
//	       [-run-timeout 10m] [-drain-timeout 30s]
//	       [-flightrec <dir>]
//
// API:
//
//	POST /run                 submit a spec (JSON), receive the rendered
//	                          report; ?stream=1 streams NDJSON progress
//	                          events ending in a run.result event
//	GET  /runs/{key}          artifact manifest (JSON)
//	GET  /runs/{key}/report   rendered text report
//	GET  /runs/{key}/report.html  self-contained HTML page
//	GET  /runs/{key}/csv/{name}   one CSV sidecar
//	GET  /healthz /readyz /metrics  liveness, readiness, Prometheus
//
// SIGTERM/SIGINT starts a graceful drain: admissions stop (readyz turns
// 503), in-flight runs finish or are cancelled at the drain deadline,
// and the cache index is flushed before exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/reprod"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "reprod:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr         = flag.String("addr", "127.0.0.1:8344", "listen address (port 0 picks a free port)")
		cacheDir     = flag.String("cache", "reprod-cache", "content-addressed artifact cache directory")
		maxActive    = flag.Int("max-active", 0, "max concurrently executing runs (0 = GOMAXPROCS)")
		maxQueue     = flag.Int("max-queue", 64, "max admitted requests waiting for a slot; beyond this, shed with 429")
		runTimeout   = flag.Duration("run-timeout", 10*time.Minute, "per-run wall-clock deadline ceiling")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long a drain waits for in-flight runs before cancelling them")
		flightDir    = flag.String("flightrec", "", "write crash flight records (flightrec-<key>.json) into this directory on panic/deadline")
	)
	flag.Parse()

	srv, err := reprod.New(reprod.Config{
		CacheDir:   *cacheDir,
		MaxActive:  *maxActive,
		MaxQueue:   *maxQueue,
		RunTimeout: *runTimeout,
		FlightDir:  *flightDir,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("listen %s: %w", *addr, err)
	}
	httpSrv := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 5 * time.Second}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	// The ready line goes to stdout so wrappers (the CI smoke script)
	// can wait for it and learn the bound address.
	fmt.Printf("reprod listening on http://%s (cache %s, %d entries)\n",
		ln.Addr(), *cacheDir, srv.Cache().Len())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	// Graceful drain: stop admitting, finish or cancel in-flight runs
	// within the deadline, flush the cache index, then close the
	// listener.
	fmt.Fprintln(os.Stderr, "reprod: draining...")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := srv.Drain(drainCtx)

	shutCtx, cancelShut := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelShut()
	if err := httpSrv.Shutdown(shutCtx); err != nil && drainErr == nil {
		drainErr = err
	}
	if drainErr != nil {
		return fmt.Errorf("drain: %w", drainErr)
	}
	fmt.Fprintln(os.Stderr, "reprod: drained cleanly")
	<-serveErr // Serve has returned http.ErrServerClosed by now
	return nil
}
