// Command btccrawl runs one crawl experiment (Algorithm 1) and optionally
// the responsive scan (Algorithm 2) against a synthetic Bitcoin universe,
// printing the snapshot the paper's Figures 3–5 are built from.
//
// Usage:
//
//	btccrawl [-scale 0.05] [-seed 1] [-day 10] [-scan] [-malicious]
//	         [-series 0] [-workers 0] [-pprof] [-pprof-addr 127.0.0.1:6060]
//
// With -series N the single-day snapshot is replaced by the full
// longitudinal study over the first N crawl experiments (Figures 3-5);
// Ctrl-C cancels between crawls.
//
// -workers sets the crawl/scan fan-out width (0 = GOMAXPROCS). Results
// are byte-identical at any width; timing goes to stderr so stdout can
// be diffed across worker counts.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"repro/internal/analysis"
	"repro/internal/crawler"
	"repro/internal/netgen"
	"repro/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "btccrawl:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		scale     = flag.Float64("scale", 0.05, "population scale (1.0 = the paper's 694K addresses)")
		seed      = flag.Int64("seed", 1, "random seed")
		day       = flag.Int("day", 10, "crawl day within the 60-day horizon")
		scan      = flag.Bool("scan", false, "also run the responsive scan (Algorithm 2)")
		malicious = flag.Bool("malicious", false, "report suspected ADDR flooders")
		series    = flag.Int("series", 0, "run the longitudinal study over this many crawl experiments instead of one snapshot")
		workers   = flag.Int("workers", 0, "crawl/scan fan-out width (0 = GOMAXPROCS; output is identical at any width)")
		pprof     = flag.Bool("pprof", false, "serve net/http/pprof profiles while the crawl runs")
		pprofAddr = flag.String("pprof-addr", "127.0.0.1:6060", "pprof listen address (with -pprof; port 0 picks a free port)")
	)
	flag.Parse()

	// The crawl counters (crawl.dials, crawl.connected, ...) always
	// accumulate here; -pprof additionally serves them live at /metrics
	// in Prometheus text format.
	reg := obs.NewRegistry()
	if *pprof {
		srv, err := obs.StartPprof(*pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof: %w", err)
		}
		defer srv.Close()
		srv.Handle("/metrics", obs.PrometheusHandler(reg))
		fmt.Printf("pprof listening on http://%s/debug/pprof/ (metrics at /metrics)\n", srv.Addr)
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancel()

	params := netgen.DefaultParams(*seed, *scale)
	if *series > 0 {
		start := time.Now()
		res, err := analysis.RunCrawlSeries(ctx, analysis.CrawlSeriesConfig{
			Params:      params,
			Experiments: *series,
			Workers:     *workers,
			Metrics:     reg,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "series of %d crawl experiments done in %v\n",
			len(res.Experiments), time.Since(start).Round(time.Millisecond))
		fmt.Printf("series of %d crawl experiments\n", len(res.Experiments))
		fmt.Printf("unique reachable %d, cumulative unreachable %d, mean connected %.0f\n",
			res.UniqueConnected, res.TotalUniqueUnreachable, res.MeanConnected)
		fmt.Printf("mean ADDR reachable share %.1f%%, flagged flooders %d\n",
			100*res.MeanAddrReachableShare, len(res.Malicious))
		return nil
	}

	fmt.Fprintf(os.Stderr, "generating universe (scale %.2f)...\n", *scale)
	u, err := netgen.Generate(params)
	if err != nil {
		return err
	}
	at := params.Epoch.Add(time.Duration(*day) * 24 * time.Hour)
	view := crawler.NewUniverseView(u, at)
	seedView := u.SeedViewAt(at)
	fmt.Printf("seed databases: bitnodes=%d dns=%d common=%d excluded=%d/%d\n",
		len(seedView.Bitnodes), len(seedView.DNS), seedView.Common,
		seedView.BitnodesExcluded, seedView.DNSExcluded)

	start := time.Now()
	c := crawler.New(crawler.Config{Metrics: reg, Workers: *workers, Index: u.Index}, view)
	snap, err := c.Crawl(ctx, at, crawler.TargetsOf(seedView), crawler.ReachableReference(seedView))
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "crawl done in %v\n", time.Since(start).Round(time.Millisecond))
	fmt.Printf("crawl: dialed %d, connected %d\n", snap.Dialed, len(snap.Connected))
	r, unr := snap.AddrComposition()
	fmt.Printf("collected %d unreachable addresses; ADDR mix %.1f%% reachable / %.1f%% unreachable\n",
		len(snap.Unreachable), 100*r, 100*unr)

	if *malicious {
		suspects := snap.SuspectedMalicious(50)
		fmt.Printf("suspected flooders: %d\n", len(suspects))
		for i, s := range suspects {
			if i >= 15 {
				fmt.Printf("  ... and %d more\n", len(suspects)-15)
				break
			}
			asn, _ := u.Alloc.ASNOf(s.Addr.Addr())
			fmt.Printf("  %v (AS%d): %d unreachable addresses, 0 reachable\n",
				s.Addr, asn, s.UnreachableSent)
		}
	}

	if *scan {
		start = time.Now()
		res, err := crawler.ScanWith(ctx, crawler.ScanConfig{Workers: *workers, Metrics: reg},
			at, view, snap.Unreachable)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "scan done in %v\n", time.Since(start).Round(time.Millisecond))
		fmt.Printf("scan: probed %d, responsive %d (%.1f%%), misclassified-reachable %d\n",
			res.Probed, len(res.Responsive),
			100*float64(len(res.Responsive))/float64(res.Probed),
			len(res.ReachableSurprises))
	}
	return nil
}
