// Command btccrawl runs one crawl experiment (Algorithm 1) and optionally
// the responsive scan (Algorithm 2) against a synthetic Bitcoin universe,
// printing the snapshot the paper's Figures 3–5 are built from.
//
// Usage:
//
//	btccrawl [-scale 0.05] [-seed 1] [-day 10] [-scan] [-malicious]
//	         [-estimate] [-series 0] [-csv series.csv] [-workers 0]
//	         [-pprof] [-pprof-addr 127.0.0.1:6060]
//
// With -series N the single-day snapshot is replaced by the full
// longitudinal study over the first N crawl experiments (Figures 3-5);
// Ctrl-C cancels between crawls. -csv (with -series) writes one row per
// crawl experiment as it finishes, flushed row by row, so even a run
// interrupted mid-series leaves a complete, parseable CSV of every
// finished experiment.
//
// -estimate attaches the Grundmann unreachable-population and
// peer-degree estimators to the crawl through the observer seam and
// prints both estimates next to the simulator's ground truth.
//
// -workers sets the crawl/scan fan-out width (0 = GOMAXPROCS). Results
// are byte-identical at any width; timing goes to stderr so stdout can
// be diffed across worker counts.
package main

import (
	"context"
	"encoding/csv"
	"flag"
	"fmt"
	"net/netip"
	"os"
	"os/signal"
	"strconv"
	"sync"
	"time"

	"repro/internal/analysis"
	"repro/internal/crawler"
	"repro/internal/estimate"
	"repro/internal/netgen"
	"repro/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "btccrawl:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		scale     = flag.Float64("scale", 0.05, "population scale (1.0 = the paper's 694K addresses)")
		seed      = flag.Int64("seed", 1, "random seed")
		day       = flag.Int("day", 10, "crawl day within the 60-day horizon")
		scan      = flag.Bool("scan", false, "also run the responsive scan (Algorithm 2)")
		malicious = flag.Bool("malicious", false, "report suspected ADDR flooders")
		estimates = flag.Bool("estimate", false, "report population/degree estimates vs ground truth (snapshot mode)")
		series    = flag.Int("series", 0, "run the longitudinal study over this many crawl experiments instead of one snapshot")
		csvOut    = flag.String("csv", "", "with -series: write one CSV row per crawl experiment as it finishes (flushed per row)")
		workers   = flag.Int("workers", 0, "crawl/scan fan-out width (0 = GOMAXPROCS; output is identical at any width)")
		pprof     = flag.Bool("pprof", false, "serve net/http/pprof profiles while the crawl runs")
		pprofAddr = flag.String("pprof-addr", "127.0.0.1:6060", "pprof listen address (with -pprof; port 0 picks a free port)")
	)
	flag.Parse()

	// The crawl counters (crawl.dials, crawl.connected, ...) always
	// accumulate here; -pprof additionally serves them live at /metrics
	// in Prometheus text format.
	reg := obs.NewRegistry()
	if *pprof {
		srv, err := obs.StartPprof(*pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof: %w", err)
		}
		defer srv.Close()
		srv.Handle("/metrics", obs.PrometheusHandler(reg))
		fmt.Printf("pprof listening on http://%s/debug/pprof/ (metrics at /metrics)\n", srv.Addr)
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancel()

	params := netgen.DefaultParams(*seed, *scale)
	if *series > 0 {
		cfg := analysis.CrawlSeriesConfig{
			Params:      params,
			Experiments: *series,
			Workers:     *workers,
			Metrics:     reg,
		}
		seriesClose := func() error { return nil }
		if *csvOut != "" {
			sw, err := newSeriesCSV(*csvOut)
			if err != nil {
				return err
			}
			cfg.OnExperiment = sw.row
			seriesClose = sw.close
			// Backstop close: a Ctrl-C that cancels the series mid-loop
			// still syncs what the per-row flushes already put on disk.
			defer seriesClose() //nolint:errcheck // explicit call below reports it
		}
		start := time.Now()
		res, err := analysis.RunCrawlSeries(ctx, cfg)
		if cerr := seriesClose(); cerr != nil && err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "series of %d crawl experiments done in %v\n",
			len(res.Experiments), time.Since(start).Round(time.Millisecond))
		fmt.Printf("series of %d crawl experiments\n", len(res.Experiments))
		fmt.Printf("unique reachable %d, cumulative unreachable %d, mean connected %.0f\n",
			res.UniqueConnected, res.TotalUniqueUnreachable, res.MeanConnected)
		fmt.Printf("mean ADDR reachable share %.1f%%, flagged flooders %d\n",
			100*res.MeanAddrReachableShare, len(res.Malicious))
		return nil
	}

	if *csvOut != "" {
		return fmt.Errorf("-csv requires -series (the snapshot mode has no series to write)")
	}

	fmt.Fprintf(os.Stderr, "generating universe (scale %.2f)...\n", *scale)
	u, err := netgen.Generate(params)
	if err != nil {
		return err
	}
	at := params.Epoch.Add(time.Duration(*day) * 24 * time.Hour)
	view := crawler.NewUniverseView(u, at)
	seedView := u.SeedViewAt(at)
	fmt.Printf("seed databases: bitnodes=%d dns=%d common=%d excluded=%d/%d\n",
		len(seedView.Bitnodes), len(seedView.DNS), seedView.Common,
		seedView.BitnodesExcluded, seedView.DNSExcluded)

	targets := crawler.TargetsOf(seedView)
	known := crawler.ReachableReference(seedView)
	ccfg := crawler.Config{Metrics: reg, Workers: *workers, Index: u.Index}
	var col *estimate.Collector
	if *estimates {
		col = estimate.NewCollector(estimate.Config{
			IsReachable: func(a netip.AddrPort) bool { _, ok := known[a]; return ok },
			Metrics:     reg,
		})
		ccfg.Observer = func(ex crawler.Exchange) { col.Exchange(ex.Source, ex.Addrs) }
	}
	start := time.Now()
	c := crawler.New(ccfg, view)
	snap, err := c.Crawl(ctx, at, targets, known)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "crawl done in %v\n", time.Since(start).Round(time.Millisecond))
	fmt.Printf("crawl: dialed %d, connected %d\n", snap.Dialed, len(snap.Connected))
	r, unr := snap.AddrComposition()
	fmt.Printf("collected %d unreachable addresses; ADDR mix %.1f%% reachable / %.1f%% unreachable\n",
		len(snap.Unreachable), 100*r, 100*unr)

	if col != nil {
		popTruth := float64(view.VisibleCount())
		popEst := col.PopulationEstimate()
		fmt.Printf("population estimate %.0f vs %.0f gossip-visible unreachable (rel err %.2f%%, %d draws)\n",
			popEst, popTruth, 100*estimate.RelativeError(popEst, popTruth), col.Pop.Total())
		online := u.OnlineReachable(at)
		visible := u.VisibleUnreachable(at)
		var truthSum float64
		var nsrc int
		for _, sd := range col.Deg.Estimates() {
			if st := u.ByAddr(sd.Source); st != nil {
				truthSum += float64(u.TrueDegreeFrom(st, at, online, visible))
				nsrc++
			}
		}
		est, ratio := col.MeanDegree()
		if nsrc > 0 {
			fmt.Printf("mean degree estimate %.1f (ratio probe %.1f) vs true %.1f over %d sources\n",
				est, ratio, truthSum/float64(nsrc), nsrc)
		}
	}

	if *malicious {
		suspects := snap.SuspectedMalicious(50)
		fmt.Printf("suspected flooders: %d\n", len(suspects))
		for i, s := range suspects {
			if i >= 15 {
				fmt.Printf("  ... and %d more\n", len(suspects)-15)
				break
			}
			asn, _ := u.Alloc.ASNOf(s.Addr.Addr())
			fmt.Printf("  %v (AS%d): %d unreachable addresses, 0 reachable\n",
				s.Addr, asn, s.UnreachableSent)
		}
	}

	if *scan {
		start = time.Now()
		res, err := crawler.ScanWith(ctx, crawler.ScanConfig{Workers: *workers, Metrics: reg},
			at, view, snap.Unreachable)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "scan done in %v\n", time.Since(start).Round(time.Millisecond))
		fmt.Printf("scan: probed %d, responsive %d (%.1f%%), misclassified-reachable %d\n",
			res.Probed, len(res.Responsive),
			100*float64(len(res.Responsive))/float64(res.Probed),
			len(res.ReachableSurprises))
	}
	return nil
}

// seriesCSV lands one crawl experiment per row, flushed row by row, so
// a series interrupted by Ctrl-C still leaves a complete CSV of every
// experiment that finished. Errors are sticky and reported by close.
type seriesCSV struct {
	f    *os.File
	w    *csv.Writer
	once sync.Once
	err  error
}

// seriesHeader is the column order of the per-experiment series CSV.
var seriesHeader = []string{
	"index", "time",
	"bitnodes", "dns", "common",
	"bitnodes_excluded", "dns_excluded", "common_excluded",
	"dialed", "connected", "connected_dns_only",
	"unique_unreachable", "cumulative_unreachable",
	"responsive", "cumulative_responsive",
	"reachable_share", "unreachable_share",
}

func newSeriesCSV(path string) (*seriesCSV, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("csv: %w", err)
	}
	s := &seriesCSV{f: f, w: csv.NewWriter(f)}
	if err := s.w.Write(seriesHeader); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("csv: %w", err)
	}
	s.w.Flush()
	if err := s.w.Error(); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("csv: %w", err)
	}
	return s, nil
}

// row appends one experiment (the CrawlSeriesConfig.OnExperiment hook).
func (s *seriesCSV) row(st analysis.ExperimentStats) {
	if s.err != nil {
		return
	}
	rec := []string{
		strconv.Itoa(st.Index), st.Time.UTC().Format(time.RFC3339),
		strconv.Itoa(st.Bitnodes), strconv.Itoa(st.DNS), strconv.Itoa(st.Common),
		strconv.Itoa(st.BitnodesExcluded), strconv.Itoa(st.DNSExcluded), strconv.Itoa(st.CommonExcluded),
		strconv.Itoa(st.Dialed), strconv.Itoa(st.Connected), strconv.Itoa(st.ConnectedDNSOnly),
		strconv.Itoa(st.UniqueUnreachable), strconv.Itoa(st.CumulativeUnreachable),
		strconv.Itoa(st.Responsive), strconv.Itoa(st.CumulativeResponsive),
		strconv.FormatFloat(st.ReachableShare, 'f', 6, 64),
		strconv.FormatFloat(st.UnreachableShare, 'f', 6, 64),
	}
	if err := s.w.Write(rec); err != nil {
		s.err = err
		return
	}
	// Flush per row: the file on disk is always header + whole rows.
	s.w.Flush()
	if err := s.w.Error(); err != nil {
		s.err = err
	}
}

// close flushes, syncs, and closes the file once; safe to call from
// both the deferred backstop and the explicit error-reporting site.
func (s *seriesCSV) close() error {
	s.once.Do(func() {
		s.w.Flush()
		if err := s.w.Error(); err != nil && s.err == nil {
			s.err = err
		}
		if err := s.f.Sync(); err != nil && s.err == nil {
			s.err = err
		}
		if err := s.f.Close(); err != nil && s.err == nil {
			s.err = err
		}
	})
	if s.err != nil {
		return fmt.Errorf("csv: %w", s.err)
	}
	return nil
}
