package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro/internal/obs
BenchmarkCounterInc-8      	92441530	        12.95 ns/op	       0 B/op	       0 allocs/op
BenchmarkHistogramObserve-8	29812345	        40.10 ns/op
BenchmarkTracerEmit-8      	 1000000	      1050 ns/op
BenchmarkCounterInc-8      	90000000	        13.20 ns/op
PASS
ok  	repro/internal/obs	5.123s
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"BenchmarkCounterInc":       12.95, // min of the two runs
		"BenchmarkHistogramObserve": 40.10,
		"BenchmarkTracerEmit":       1050,
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d benchmarks, want %d: %v", len(got), len(want), got)
	}
	for name, ns := range want {
		if got[name] != ns {
			t.Errorf("%s = %v ns/op, want %v", name, got[name], ns)
		}
	}
}

func TestParseBenchIgnoresNoise(t *testing.T) {
	got, err := parseBench(strings.NewReader("random text\nFAIL\n--- BenchmarkNot a result\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("parsed %d benchmarks from noise: %v", len(got), got)
	}
}

func TestCompareWithinTolerance(t *testing.T) {
	base := map[string]float64{"BenchmarkX": 100}
	if p := compare(base, map[string]float64{"BenchmarkX": 124}, 0.25); len(p) != 0 {
		t.Errorf("24%% slowdown should pass at 25%% tolerance: %v", p)
	}
	if p := compare(base, map[string]float64{"BenchmarkX": 80}, 0.25); len(p) != 0 {
		t.Errorf("speedup should always pass: %v", p)
	}
}

func TestCompareRegression(t *testing.T) {
	base := map[string]float64{"BenchmarkX": 100, "BenchmarkY": 10}
	p := compare(base, map[string]float64{"BenchmarkX": 130, "BenchmarkY": 10}, 0.25)
	if len(p) != 1 || !strings.Contains(p[0], "BenchmarkX") {
		t.Fatalf("30%% slowdown should fail exactly once: %v", p)
	}
}

func TestCompareMissingBenchmark(t *testing.T) {
	base := map[string]float64{"BenchmarkGone": 50}
	p := compare(base, map[string]float64{}, 0.25)
	if len(p) != 1 || !strings.Contains(p[0], "missing") {
		t.Fatalf("baseline entry absent from output should fail: %v", p)
	}
}

func TestCompareNewBenchmarkPasses(t *testing.T) {
	p := compare(map[string]float64{}, map[string]float64{"BenchmarkNew": 5}, 0.25)
	if len(p) != 0 {
		t.Fatalf("benchmark not in baseline should not fail the guard: %v", p)
	}
}
