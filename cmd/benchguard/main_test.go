package main

import (
	"encoding/json"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro/internal/obs
BenchmarkCounterInc-8      	92441530	        12.95 ns/op	       0 B/op	       0 allocs/op
BenchmarkHistogramObserve-8	29812345	        40.10 ns/op
BenchmarkTracerEmit-8      	 1000000	      1050 ns/op	     128 B/op	       2 allocs/op
BenchmarkCounterInc-8      	90000000	        13.20 ns/op	       8 B/op	       1 allocs/op
PASS
ok  	repro/internal/obs	5.123s
`

func f64(v float64) *float64 { return &v }

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %v", len(got), got)
	}
	// Min of the two CounterInc runs, per column.
	ci := got["BenchmarkCounterInc"]
	if ci.NsPerOp != 12.95 || ci.BPerOp != 0 || ci.AllocsPerOp != 0 || !ci.HasMem {
		t.Errorf("CounterInc = %+v, want min ns 12.95, 0 B/op, 0 allocs/op", ci)
	}
	if ci.Pkg != "repro/internal/obs" {
		t.Errorf("CounterInc pkg = %q, want repro/internal/obs", ci.Pkg)
	}
	ho := got["BenchmarkHistogramObserve"]
	if ho.NsPerOp != 40.10 || ho.HasMem {
		t.Errorf("HistogramObserve = %+v, want 40.10 ns/op without memory columns", ho)
	}
	te := got["BenchmarkTracerEmit"]
	if te.NsPerOp != 1050 || te.BPerOp != 128 || te.AllocsPerOp != 2 {
		t.Errorf("TracerEmit = %+v, want 1050/128/2", te)
	}
}

func TestParseBenchIgnoresNoise(t *testing.T) {
	got, err := parseBench(strings.NewReader("random text\nFAIL\n--- BenchmarkNot a result\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("parsed %d benchmarks from noise: %v", len(got), got)
	}
}

var defaults = gateParams{nsTolerance: 0.25, bTolerance: 0.10}

func TestCompareWithinTolerance(t *testing.T) {
	base := map[string]*Entry{"BenchmarkX": {NsPerOp: 100}}
	p, _ := compare(base, map[string]Result{"BenchmarkX": {NsPerOp: 124}}, defaults)
	if len(p) != 0 {
		t.Errorf("24%% slowdown should pass at 25%% tolerance: %v", p)
	}
	p, _ = compare(base, map[string]Result{"BenchmarkX": {NsPerOp: 80}}, defaults)
	if len(p) != 0 {
		t.Errorf("speedup should always pass: %v", p)
	}
}

func TestCompareRegression(t *testing.T) {
	base := map[string]*Entry{"BenchmarkX": {NsPerOp: 100}, "BenchmarkY": {NsPerOp: 10}}
	p, _ := compare(base, map[string]Result{
		"BenchmarkX": {NsPerOp: 130},
		"BenchmarkY": {NsPerOp: 10},
	}, defaults)
	if len(p) != 1 || !strings.Contains(p[0], "BenchmarkX") {
		t.Fatalf("30%% slowdown should fail exactly once: %v", p)
	}
}

func TestCompareMissingBenchmark(t *testing.T) {
	base := map[string]*Entry{"BenchmarkGone": {NsPerOp: 50}}
	p, _ := compare(base, map[string]Result{}, defaults)
	if len(p) != 1 || !strings.Contains(p[0], "missing") {
		t.Fatalf("baseline entry absent from output should fail: %v", p)
	}
}

func TestCompareNewBenchmarkPasses(t *testing.T) {
	p, _ := compare(map[string]*Entry{}, map[string]Result{"BenchmarkNew": {NsPerOp: 5}}, defaults)
	if len(p) != 0 {
		t.Fatalf("benchmark not in baseline should not fail the guard: %v", p)
	}
}

func TestCompareAllocRegression(t *testing.T) {
	base := map[string]*Entry{
		"BenchmarkX": {NsPerOp: 100, BPerOp: f64(0), AllocsPerOp: f64(0)},
	}
	// One new allocation fails with zero slack.
	p, _ := compare(base, map[string]Result{
		"BenchmarkX": {NsPerOp: 100, BPerOp: 16, AllocsPerOp: 1, HasMem: true},
	}, defaults)
	if len(p) != 1 || !strings.Contains(p[0], "allocs/op") {
		t.Fatalf("alloc growth with zero slack should fail once: %v", p)
	}
	// Per-entry slack absorbs it.
	base["BenchmarkX"].AllocSlack = f64(1)
	p, _ = compare(base, map[string]Result{
		"BenchmarkX": {NsPerOp: 100, BPerOp: 16, AllocsPerOp: 1, HasMem: true},
	}, defaults)
	if len(p) != 0 {
		t.Fatalf("alloc growth within per-entry slack should pass: %v", p)
	}
}

func TestCompareBytesFloorAndRelative(t *testing.T) {
	// Small baseline: the 64-byte floor dominates the 10% gate.
	base := map[string]*Entry{
		"BenchmarkSmall": {NsPerOp: 10, BPerOp: f64(8), AllocsPerOp: f64(1)},
		"BenchmarkBig":   {NsPerOp: 10, BPerOp: f64(1 << 20), AllocsPerOp: f64(1)},
	}
	p, _ := compare(base, map[string]Result{
		"BenchmarkSmall": {NsPerOp: 10, BPerOp: 64, AllocsPerOp: 1, HasMem: true},
		"BenchmarkBig":   {NsPerOp: 10, BPerOp: 1 << 20, AllocsPerOp: 1, HasMem: true},
	}, defaults)
	if len(p) != 0 {
		t.Fatalf("+56B on an 8B baseline is within the floor: %v", p)
	}
	// Big benchmark growing 20% trips the relative gate even though the
	// floor alone would never catch it.
	p, _ = compare(base, map[string]Result{
		"BenchmarkSmall": {NsPerOp: 10, BPerOp: 8, AllocsPerOp: 1, HasMem: true},
		"BenchmarkBig":   {NsPerOp: 10, BPerOp: 1.2 * (1 << 20), AllocsPerOp: 1, HasMem: true},
	}, defaults)
	if len(p) != 1 || !strings.Contains(p[0], "BenchmarkBig") || !strings.Contains(p[0], "B/op") {
		t.Fatalf("20%% byte growth on a big benchmark should fail the B/op gate: %v", p)
	}
}

func TestCompareSkipsMemGatesWithoutBenchmem(t *testing.T) {
	base := map[string]*Entry{
		"BenchmarkX": {NsPerOp: 100, BPerOp: f64(0), AllocsPerOp: f64(0)},
	}
	p, n := compare(base, map[string]Result{
		"BenchmarkX": {NsPerOp: 100}, // no -benchmem columns
	}, defaults)
	if len(p) != 0 {
		t.Fatalf("missing -benchmem columns must not fail the guard: %v", p)
	}
	if len(n) != 1 || !strings.Contains(n[0], "-benchmem") {
		t.Fatalf("skipping memory gates should produce one notice: %v", n)
	}
}

func TestRequireZero(t *testing.T) {
	got := map[string]Result{
		"BenchmarkClean": {NsPerOp: 100, BPerOp: 0, AllocsPerOp: 0, HasMem: true},
		"BenchmarkDirty": {NsPerOp: 100, BPerOp: 48, AllocsPerOp: 3, HasMem: true},
		"BenchmarkNoMem": {NsPerOp: 100},
	}
	if p := requireZero(nil, got); len(p) != 0 {
		t.Fatalf("no -require-zero flags should check nothing: %v", p)
	}
	if p := requireZero([]string{"BenchmarkClean"}, got); len(p) != 0 {
		t.Fatalf("0 allocs/op should satisfy the contract: %v", p)
	}
	p := requireZero([]string{"BenchmarkClean", "BenchmarkDirty", "BenchmarkNoMem", "BenchmarkAbsent"}, got)
	if len(p) != 3 {
		t.Fatalf("want 3 violations (allocs, no -benchmem, missing), got: %v", p)
	}
	for i, want := range []string{"BenchmarkDirty", "BenchmarkNoMem", "BenchmarkAbsent"} {
		if !strings.Contains(p[i], want) {
			t.Errorf("problem %d = %q, want it to name %s", i, p[i], want)
		}
	}
	// Even a zero-alloc benchmark fails if the run omitted -benchmem:
	// the contract must be verified, not assumed.
	if p := requireZero([]string{"BenchmarkNoMem"}, got); len(p) != 1 || !strings.Contains(p[0], "-benchmem") {
		t.Fatalf("missing -benchmem columns must fail -require-zero: %v", p)
	}
}

func TestMigrateV1Baseline(t *testing.T) {
	raw := `{"note":"old","ns_per_op":{"BenchmarkA":12.5,"BenchmarkB":300}}`
	var b Baseline
	if err := json.Unmarshal([]byte(raw), &b); err != nil {
		t.Fatal(err)
	}
	b.migrate()
	if len(b.Benchmarks) != 2 || b.NsPerOp != nil {
		t.Fatalf("migrate: %+v", b)
	}
	e := b.Benchmarks["BenchmarkA"]
	if e.NsPerOp != 12.5 || e.BPerOp != nil || e.AllocsPerOp != nil {
		t.Fatalf("migrated entry: %+v", e)
	}
	// Migrated entries still gate ns/op...
	p, _ := compare(b.Benchmarks, map[string]Result{
		"BenchmarkA": {NsPerOp: 20, HasMem: true},
		"BenchmarkB": {NsPerOp: 300, HasMem: true},
	}, defaults)
	if len(p) != 1 || !strings.Contains(p[0], "BenchmarkA") {
		t.Fatalf("migrated v1 entries must still gate ns/op: %v", p)
	}
	// ...and never memory (no reference data), even with -benchmem input.
	p, n := compare(b.Benchmarks, map[string]Result{
		"BenchmarkA": {NsPerOp: 12.5, BPerOp: 4096, AllocsPerOp: 50, HasMem: true},
		"BenchmarkB": {NsPerOp: 300, HasMem: true},
	}, defaults)
	if len(p) != 0 || len(n) != 0 {
		t.Fatalf("v1 entries carry no memory gates: problems=%v notices=%v", p, n)
	}
}

func TestRegenerateNoteFromEntries(t *testing.T) {
	b := buildBaseline(map[string]Result{
		"BenchmarkCounterInc": {Pkg: "repro/internal/obs", NsPerOp: 12, BPerOp: 0, AllocsPerOp: 0, HasMem: true},
		"BenchmarkTracerEmit": {Pkg: "repro/internal/obs", NsPerOp: 200, BPerOp: 0, AllocsPerOp: 0, HasMem: true},
		"BenchmarkScan":       {Pkg: "repro/internal/crawler", NsPerOp: 35e4, BPerOp: 100, AllocsPerOp: 3, HasMem: true},
	}, nil)
	if b.Schema != baselineSchema {
		t.Fatalf("schema = %d, want %d", b.Schema, baselineSchema)
	}
	note := b.Note
	for _, want := range []string{
		"./internal/obs/",
		"./internal/crawler/",
		"-benchmem",
		"'^Benchmark(CounterInc|TracerEmit)$'",
		"'^Benchmark(Scan)$'",
		"-update",
	} {
		if !strings.Contains(note, want) {
			t.Errorf("note %q missing %q", note, want)
		}
	}
}

func TestBuildBaselineCarriesOverrides(t *testing.T) {
	prev := &Baseline{Benchmarks: map[string]*Entry{
		"BenchmarkX": {Pkg: "repro/internal/obs", NsPerOp: 100, AllocSlack: f64(2), NsTolerance: f64(0.5)},
	}}
	b := buildBaseline(map[string]Result{
		"BenchmarkX": {Pkg: "repro/internal/obs", NsPerOp: 90, BPerOp: 8, AllocsPerOp: 1, HasMem: true},
	}, prev)
	e := b.Benchmarks["BenchmarkX"]
	if e.AllocSlack == nil || *e.AllocSlack != 2 || e.NsTolerance == nil || *e.NsTolerance != 0.5 {
		t.Fatalf("per-entry overrides lost across -update: %+v", e)
	}
	if e.NsPerOp != 90 || e.BPerOp == nil || *e.BPerOp != 8 {
		t.Fatalf("observed costs not taken: %+v", e)
	}
}
