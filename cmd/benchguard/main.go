// Command benchguard compares `go test -bench` output against a JSON
// baseline and fails when any benchmark regresses beyond a tolerance.
// It is the CI tripwire for the hot paths the observability layer
// instruments: a counter increment or histogram observation that gets
// slower silently taxes every simulated message.
//
// Usage:
//
//	go test -run '^$' -bench . ./internal/obs/ | benchguard -baseline BENCH_baseline.json
//	go test -run '^$' -bench . ./internal/obs/ | benchguard -baseline BENCH_baseline.json -update
//
// With -update the baseline file is rewritten from the observed run
// instead of being enforced. Benchmarks present in the output but not
// in the baseline are reported and pass (new benchmarks should not
// break CI); baseline entries missing from the output fail, so a
// deleted benchmark forces a deliberate baseline update.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// Baseline is the persisted benchmark reference: benchmark name (with
// the GOMAXPROCS -N suffix stripped) to nanoseconds per operation.
type Baseline struct {
	// Note documents how to regenerate the file.
	Note string `json:"note"`
	// NsPerOp maps benchmark name to the reference ns/op.
	NsPerOp map[string]float64 `json:"ns_per_op"`
}

// benchLine matches standard `go test -bench` result lines, e.g.
// "BenchmarkCounterInc-8   92441530   12.95 ns/op   0 B/op".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+(?:e[+-]?\d+)?) ns/op`)

// parseBench extracts name→ns/op pairs from go test -bench output.
// When a benchmark appears more than once (e.g. -count=3), the minimum
// is kept: the fastest run is the least noisy estimate of the true cost.
func parseBench(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("benchguard: bad ns/op in %q: %w", sc.Text(), err)
		}
		if prev, ok := out[m[1]]; !ok || ns < prev {
			out[m[1]] = ns
		}
	}
	return out, sc.Err()
}

// compare checks observed results against the baseline. It returns
// human-readable problem descriptions; empty means the guard passes.
func compare(base, got map[string]float64, tolerance float64) []string {
	var problems []string
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ref := base[name]
		ns, ok := got[name]
		if !ok {
			problems = append(problems,
				fmt.Sprintf("%s: in baseline but missing from bench output", name))
			continue
		}
		if ref > 0 && ns > ref*(1+tolerance) {
			problems = append(problems,
				fmt.Sprintf("%s: %.2f ns/op exceeds baseline %.2f ns/op by more than %.0f%%",
					name, ns, ref, 100*tolerance))
		}
	}
	return problems
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		baselinePath = flag.String("baseline", "BENCH_baseline.json", "baseline JSON file")
		tolerance    = flag.Float64("tolerance", 0.25, "allowed fractional slowdown before failing")
		update       = flag.Bool("update", false, "rewrite the baseline from this run instead of enforcing it")
	)
	flag.Parse()

	got, err := parseBench(os.Stdin)
	if err != nil {
		return err
	}
	if len(got) == 0 {
		return fmt.Errorf("no benchmark results on stdin (pipe `go test -bench` output in)")
	}

	if *update {
		b := Baseline{
			Note:    "regenerate: { go test -run '^$' -bench . ./internal/obs/; go test -run '^$' -bench SchedulerThroughput ./internal/simnet/; go test -run '^$' -bench RunnerFanOut ./internal/core/; go test -run '^$' -bench 'CrawlSnapshot|Scan$|UniverseView' ./internal/crawler/; } | go run ./cmd/benchguard -baseline BENCH_baseline.json -update",
			NsPerOp: got,
		}
		data, err := json.MarshalIndent(b, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*baselinePath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("benchguard: wrote %d benchmarks to %s\n", len(got), *baselinePath)
		return nil
	}

	data, err := os.ReadFile(*baselinePath)
	if err != nil {
		return err
	}
	var base Baseline
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parsing %s: %w", *baselinePath, err)
	}

	problems := compare(base.NsPerOp, got, *tolerance)
	for name := range got {
		if _, ok := base.NsPerOp[name]; !ok {
			fmt.Printf("benchguard: %s is new (not in baseline); add it with -update\n", name)
		}
	}
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "benchguard: FAIL:", p)
		}
		return fmt.Errorf("%d benchmark regression(s)", len(problems))
	}
	fmt.Printf("benchguard: %d benchmarks within %.0f%% of baseline\n",
		len(base.NsPerOp), 100**tolerance)
	return nil
}
