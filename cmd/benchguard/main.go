// Command benchguard compares `go test -bench` output against a JSON
// baseline and fails when any benchmark regresses beyond a tolerance.
// It is the CI tripwire for the hot paths the observability layer
// instruments: a counter increment or histogram observation that gets
// slower — or starts allocating — silently taxes every simulated
// message.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./internal/obs/ | benchguard -baseline BENCH_baseline.json
//	go test -run '^$' -bench . -benchmem ./internal/obs/ | benchguard -baseline BENCH_baseline.json -update
//
// Three gates run per baselined benchmark:
//
//	ns/op      relative: fails beyond -tolerance (default 25%)
//	B/op       relative with an absolute floor: fails only beyond both
//	           -b-tolerance (default 10%) and +64 bytes, so tiny
//	           benchmarks aren't flaky and big ones can't hide bloat
//	allocs/op  absolute: fails when the count grows by more than the
//	           entry's alloc_slack (default 0 — allocs/op is
//	           deterministic, so any growth is a real new allocation)
//
// Per-entry overrides (ns_tolerance, b_tolerance, alloc_slack) in the
// baseline take precedence over the flags. Memory gates only apply to
// entries with b_per_op/allocs_per_op recorded; if the piped output
// lacks -benchmem columns those gates are skipped with a notice.
//
// A fourth, baseline-independent gate is opted into per benchmark with
// the repeatable -require-zero flag: the named benchmark must report
// exactly 0 allocs/op. Unlike the baseline gates, there is no slack and
// no way to ratchet the number up via -update — a zero-allocation
// contract (e.g. the relay pump steady state) either holds or the build
// fails. A -require-zero benchmark that is missing from the output, or
// whose run lacked -benchmem columns, also fails: the contract cannot
// be silently skipped.
//
// With -update the baseline file is rewritten from the observed run
// instead of being enforced: schema v2, one entry per benchmark with its
// owning package, and a regenerate note derived from the baseline
// entries themselves (so the note can never drift from the keys again).
// Per-entry tolerance overrides survive the rewrite. Legacy v1 files
// (a bare ns_per_op map) stay readable; their entries simply carry no
// memory data until the next -update.
//
// Benchmarks present in the output but not in the baseline are reported
// and pass (new benchmarks should not break CI); baseline entries
// missing from the output fail, so a deleted benchmark forces a
// deliberate baseline update.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// modulePath prefixes the pkg: lines in bench output; the regenerate
// note rewrites it to a ./ path so the commands run from the repo root.
const modulePath = "repro"

// baselineSchema is the current file schema version. Files without the
// field are v1 (a bare ns_per_op map) and are migrated on load.
const baselineSchema = 2

// Entry is one benchmark's reference costs and optional gate overrides.
type Entry struct {
	// Pkg is the Go package that owns the benchmark (from the pkg: line
	// of the run that produced the baseline); the regenerate note is
	// derived from it.
	Pkg string `json:"pkg,omitempty"`
	// NsPerOp is the reference CPU cost.
	NsPerOp float64 `json:"ns_per_op"`
	// BPerOp and AllocsPerOp are the reference memory costs, present
	// only when the baselining run used -benchmem.
	BPerOp      *float64 `json:"b_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// NsTolerance, BTolerance, and AllocSlack override the global gate
	// parameters for this benchmark only.
	NsTolerance *float64 `json:"ns_tolerance,omitempty"`
	BTolerance  *float64 `json:"b_tolerance,omitempty"`
	AllocSlack  *float64 `json:"alloc_slack,omitempty"`
}

// Baseline is the persisted benchmark reference.
type Baseline struct {
	// Note documents how to regenerate the file; -update derives it from
	// the entries so it cannot drift.
	Note string `json:"note"`
	// Schema is the file format version (absent = legacy v1).
	Schema int `json:"schema,omitempty"`
	// Benchmarks maps benchmark name (GOMAXPROCS -N suffix stripped) to
	// its reference entry.
	Benchmarks map[string]*Entry `json:"benchmarks,omitempty"`
	// NsPerOp is the legacy v1 field, migrated into Benchmarks on load.
	NsPerOp map[string]float64 `json:"ns_per_op,omitempty"`
}

// migrate lifts a legacy v1 baseline into the v2 shape: ns-only entries
// with no package attribution, so ns gates still run and memory gates
// wait for the next -update.
func (b *Baseline) migrate() {
	if len(b.Benchmarks) > 0 || len(b.NsPerOp) == 0 {
		return
	}
	b.Benchmarks = make(map[string]*Entry, len(b.NsPerOp))
	for name, ns := range b.NsPerOp {
		b.Benchmarks[name] = &Entry{NsPerOp: ns}
	}
	b.NsPerOp = nil
}

// Result is one benchmark's observed costs from the piped output.
type Result struct {
	Pkg         string
	NsPerOp     float64
	BPerOp      float64
	AllocsPerOp float64
	// HasMem records whether the line carried -benchmem columns.
	HasMem bool
}

// benchLine matches standard `go test -bench` result lines, with the
// optional -benchmem columns, e.g.
// "BenchmarkCounterInc-8   92441530   12.95 ns/op   0 B/op   0 allocs/op".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+(?:e[+-]?\d+)?) ns/op(?:\s+([0-9.]+(?:e[+-]?\d+)?) B/op\s+([0-9]+) allocs/op)?`)

// pkgLine matches the package header go test prints before each
// package's benchmarks.
var pkgLine = regexp.MustCompile(`^pkg: (\S+)$`)

// parseBench extracts name→Result pairs from go test -bench output,
// attributing each benchmark to the most recent pkg: header. When a
// benchmark appears more than once (e.g. -count=3), the minimum of each
// column is kept: the fastest, leanest run is the least noisy estimate
// of the true cost.
func parseBench(r io.Reader) (map[string]Result, error) {
	out := make(map[string]Result)
	sc := bufio.NewScanner(r)
	pkg := ""
	for sc.Scan() {
		line := sc.Text()
		if m := pkgLine.FindStringSubmatch(line); m != nil {
			pkg = m[1]
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		res := Result{Pkg: pkg}
		var err error
		if res.NsPerOp, err = strconv.ParseFloat(m[2], 64); err != nil {
			return nil, fmt.Errorf("benchguard: bad ns/op in %q: %w", line, err)
		}
		if m[3] != "" {
			res.HasMem = true
			if res.BPerOp, err = strconv.ParseFloat(m[3], 64); err != nil {
				return nil, fmt.Errorf("benchguard: bad B/op in %q: %w", line, err)
			}
			if res.AllocsPerOp, err = strconv.ParseFloat(m[4], 64); err != nil {
				return nil, fmt.Errorf("benchguard: bad allocs/op in %q: %w", line, err)
			}
		}
		name := m[1]
		prev, seen := out[name]
		if !seen {
			out[name] = res
			continue
		}
		if res.NsPerOp < prev.NsPerOp {
			prev.NsPerOp = res.NsPerOp
		}
		if res.HasMem {
			if !prev.HasMem || res.BPerOp < prev.BPerOp {
				prev.BPerOp = res.BPerOp
			}
			if !prev.HasMem || res.AllocsPerOp < prev.AllocsPerOp {
				prev.AllocsPerOp = res.AllocsPerOp
			}
			prev.HasMem = true
		}
		if prev.Pkg == "" {
			prev.Pkg = res.Pkg
		}
		out[name] = prev
	}
	return out, sc.Err()
}

// gateParams are the global gate settings the flags provide; per-entry
// overrides take precedence.
type gateParams struct {
	nsTolerance float64
	bTolerance  float64
	allocSlack  float64
}

// bFloorBytes is the absolute B/op growth always allowed alongside the
// relative gate: small benchmarks jitter by an allocator size class, and
// a 64-byte creep on a multi-megabyte benchmark is not the signal.
const bFloorBytes = 64

// override returns *v when set, otherwise def.
func override(v *float64, def float64) float64 {
	if v != nil {
		return *v
	}
	return def
}

// compare checks observed results against the baseline. It returns
// human-readable problem descriptions (empty means the guard passes)
// plus non-fatal notices (e.g. memory gates skipped for lack of
// -benchmem columns).
func compare(base map[string]*Entry, got map[string]Result, p gateParams) (problems, notices []string) {
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ref := base[name]
		res, ok := got[name]
		if !ok {
			problems = append(problems,
				fmt.Sprintf("%s: in baseline but missing from bench output", name))
			continue
		}
		if nsTol := override(ref.NsTolerance, p.nsTolerance); ref.NsPerOp > 0 && res.NsPerOp > ref.NsPerOp*(1+nsTol) {
			problems = append(problems,
				fmt.Sprintf("%s: %.2f ns/op exceeds baseline %.2f ns/op by more than %.0f%%",
					name, res.NsPerOp, ref.NsPerOp, 100*nsTol))
		}
		if ref.BPerOp == nil && ref.AllocsPerOp == nil {
			continue
		}
		if !res.HasMem {
			notices = append(notices,
				fmt.Sprintf("%s: baseline has memory data but output lacks -benchmem columns; B/op and allocs/op gates skipped", name))
			continue
		}
		if ref.BPerOp != nil {
			bTol := override(ref.BTolerance, p.bTolerance)
			limit := *ref.BPerOp * (1 + bTol)
			if floor := *ref.BPerOp + bFloorBytes; floor > limit {
				limit = floor
			}
			if res.BPerOp > limit {
				problems = append(problems,
					fmt.Sprintf("%s: %.0f B/op exceeds baseline %.0f B/op (limit %.0f: +%.0f%% with a %dB floor)",
						name, res.BPerOp, *ref.BPerOp, limit, 100*bTol, bFloorBytes))
			}
		}
		if ref.AllocsPerOp != nil {
			slack := override(ref.AllocSlack, p.allocSlack)
			if res.AllocsPerOp > *ref.AllocsPerOp+slack {
				problems = append(problems,
					fmt.Sprintf("%s: %.0f allocs/op exceeds baseline %.0f allocs/op (slack %.0f)",
						name, res.AllocsPerOp, *ref.AllocsPerOp, slack))
			}
		}
	}
	return problems, notices
}

// requireZero enforces the -require-zero contract: every named
// benchmark must appear in the output with -benchmem columns and report
// exactly 0 allocs/op. Names are matched with the GOMAXPROCS suffix
// stripped, like baseline keys.
func requireZero(names []string, got map[string]Result) (problems []string) {
	for _, name := range names {
		res, ok := got[name]
		switch {
		case !ok:
			problems = append(problems,
				fmt.Sprintf("%s: -require-zero but missing from bench output", name))
		case !res.HasMem:
			problems = append(problems,
				fmt.Sprintf("%s: -require-zero but output lacks -benchmem columns", name))
		case res.AllocsPerOp != 0:
			problems = append(problems,
				fmt.Sprintf("%s: %.0f allocs/op violates the -require-zero contract", name, res.AllocsPerOp))
		}
	}
	return problems
}

// stringList is a repeatable string flag.
type stringList []string

func (l *stringList) String() string { return strings.Join(*l, ",") }

func (l *stringList) Set(v string) error {
	*l = append(*l, v)
	return nil
}

// regenerateNote derives the baseline's regenerate command from its own
// entries: one `go test -bench` invocation per package, each matching
// exactly the baselined benchmark names. Because the note is computed
// from the keys, it cannot drift from them. Entries without package
// attribution (migrated v1 files) fall back to a generic hint.
func regenerateNote(benchmarks map[string]*Entry) string {
	byPkg := make(map[string][]string)
	unattributed := false
	for name, e := range benchmarks {
		if e.Pkg == "" {
			unattributed = true
			continue
		}
		byPkg[e.Pkg] = append(byPkg[e.Pkg], strings.TrimPrefix(name, "Benchmark"))
	}
	if len(byPkg) == 0 {
		return "regenerate: pipe `go test -run '^$' -bench . -benchmem <packages>` into `go run ./cmd/benchguard -update`"
	}
	pkgs := make([]string, 0, len(byPkg))
	for pkg := range byPkg {
		pkgs = append(pkgs, pkg)
	}
	sort.Strings(pkgs)
	var cmds []string
	for _, pkg := range pkgs {
		names := byPkg[pkg]
		sort.Strings(names)
		dir := pkg
		if dir == modulePath {
			dir = "./"
		} else {
			dir = "./" + strings.TrimPrefix(dir, modulePath+"/") + "/"
		}
		cmds = append(cmds, fmt.Sprintf("go test -run '^$' -bench '^Benchmark(%s)$' -benchmem %s",
			strings.Join(names, "|"), dir))
	}
	note := "regenerate: { " + strings.Join(cmds, "; ") +
		"; } | go run ./cmd/benchguard -baseline BENCH_baseline.json -update"
	if unattributed {
		note += " (some entries lack pkg attribution; they are omitted from the commands above)"
	}
	return note
}

// buildBaseline assembles a v2 baseline from observed results, carrying
// per-entry tolerance overrides forward from the previous baseline.
func buildBaseline(got map[string]Result, prev *Baseline) *Baseline {
	b := &Baseline{Schema: baselineSchema, Benchmarks: make(map[string]*Entry, len(got))}
	for name, res := range got {
		e := &Entry{Pkg: res.Pkg, NsPerOp: res.NsPerOp}
		if res.HasMem {
			bpo, apo := res.BPerOp, res.AllocsPerOp
			e.BPerOp, e.AllocsPerOp = &bpo, &apo
		}
		if prev != nil {
			if old, ok := prev.Benchmarks[name]; ok {
				e.NsTolerance, e.BTolerance, e.AllocSlack = old.NsTolerance, old.BTolerance, old.AllocSlack
				if e.Pkg == "" {
					e.Pkg = old.Pkg
				}
			}
		}
		b.Benchmarks[name] = e
	}
	b.Note = regenerateNote(b.Benchmarks)
	return b
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		baselinePath = flag.String("baseline", "BENCH_baseline.json", "baseline JSON file")
		tolerance    = flag.Float64("tolerance", 0.25, "allowed fractional ns/op slowdown before failing")
		bTolerance   = flag.Float64("b-tolerance", 0.10, "allowed fractional B/op growth before failing (with a 64-byte absolute floor)")
		allocSlack   = flag.Float64("alloc-slack", 0, "allowed absolute allocs/op growth before failing")
		update       = flag.Bool("update", false, "rewrite the baseline from this run instead of enforcing it")
		zeroAlloc    stringList
	)
	flag.Var(&zeroAlloc, "require-zero", "benchmark that must report 0 allocs/op regardless of baseline (repeatable)")
	flag.Parse()

	got, err := parseBench(os.Stdin)
	if err != nil {
		return err
	}
	if len(got) == 0 {
		return fmt.Errorf("no benchmark results on stdin (pipe `go test -bench` output in)")
	}

	// The zero-allocation contract is baseline-independent, so it is
	// enforced even under -update: a violating run must not be baked
	// into a new baseline.
	if zeroProblems := requireZero(zeroAlloc, got); len(zeroProblems) > 0 {
		for _, p := range zeroProblems {
			fmt.Fprintln(os.Stderr, "benchguard: FAIL:", p)
		}
		return fmt.Errorf("%d zero-allocation contract violation(s)", len(zeroProblems))
	}

	if *update {
		var prev *Baseline
		if data, err := os.ReadFile(*baselinePath); err == nil {
			prev = &Baseline{}
			if json.Unmarshal(data, prev) == nil {
				prev.migrate()
			} else {
				prev = nil
			}
		}
		b := buildBaseline(got, prev)
		data, err := json.MarshalIndent(b, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*baselinePath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		withMem := 0
		for _, e := range b.Benchmarks {
			if e.BPerOp != nil {
				withMem++
			}
		}
		fmt.Printf("benchguard: wrote %d benchmarks (%d with memory data) to %s\n",
			len(got), withMem, *baselinePath)
		if withMem < len(got) {
			fmt.Printf("benchguard: note: %d benchmark(s) lacked -benchmem columns and carry no B/op / allocs/op gates\n",
				len(got)-withMem)
		}
		return nil
	}

	data, err := os.ReadFile(*baselinePath)
	if err != nil {
		return err
	}
	var base Baseline
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parsing %s: %w", *baselinePath, err)
	}
	base.migrate()

	problems, notices := compare(base.Benchmarks, got, gateParams{
		nsTolerance: *tolerance,
		bTolerance:  *bTolerance,
		allocSlack:  *allocSlack,
	})
	for _, n := range notices {
		fmt.Println("benchguard:", n)
	}
	for name := range got {
		if _, ok := base.Benchmarks[name]; !ok {
			fmt.Printf("benchguard: %s is new (not in baseline); add it with -update\n", name)
		}
	}
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "benchguard: FAIL:", p)
		}
		return fmt.Errorf("%d benchmark regression(s)", len(problems))
	}
	gated := 0
	for _, e := range base.Benchmarks {
		if e.BPerOp != nil || e.AllocsPerOp != nil {
			gated++
		}
	}
	fmt.Printf("benchguard: %d benchmarks within tolerance (%d with B/op and allocs/op gates)\n",
		len(base.Benchmarks), gated)
	return nil
}
