// Command btcsim runs a message-level Bitcoin network simulation and
// reports propagation and synchronization statistics.
//
// Usage:
//
//	btcsim [-nodes 120] [-hours 4] [-churn 1.5] [-policy round-robin]
//	       [-policies tried-only-addr+horizon-17d] [-txs 100] [-compact]
//	       [-seed 1] [-runs 1] [-workers 0] [-trace-out trace.ndjson]
//	       [-pprof] [-pprof-addr 127.0.0.1:6060]
//
// The relay policy is one of round-robin (Bitcoin Core's behaviour),
// broadcast (the theoretical ideal), or priority-outbound (the paper's
// §V refinement; "priority" is accepted as an alias). -policies applies
// a composable intervention policy set (node.ParsePolicySet syntax) on
// top: addressing, relay, and peering interventions in one encoding.
// With -runs N the simulation is replicated on paired
// seeds across -workers goroutines; per-run summaries print in run
// order regardless of completion order, and Ctrl-C cancels mid-run.
// -trace-out streams every propagation-span trace event (deliveries
// and relays, one JSON object per line) to a file as the simulation
// runs; with -pprof the same server also exposes live metrics in
// Prometheus text format at /metrics.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sync"
	"time"

	"repro/internal/analysis"
	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "btcsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		nodes     = flag.Int("nodes", 120, "reachable full nodes")
		hours     = flag.Float64("hours", 4, "measured virtual hours")
		churn     = flag.Float64("churn", 1.5, "node departures per 10 virtual minutes")
		policy    = flag.String("policy", "round-robin", "relay policy: round-robin | broadcast | priority-outbound (alias: priority)")
		policies  = flag.String("policies", "", "intervention policy set applied to every node (e.g. \"tried-only-addr+horizon-17d\"; \"stock\" = none)")
		txs       = flag.Int("txs", 100, "background transactions per block interval")
		compact   = flag.Bool("compact", false, "use BIP-152 compact block relay")
		seed      = flag.Int64("seed", 1, "random seed")
		runs      = flag.Int("runs", 1, "replications on paired seeds (seed + i*7919)")
		workers   = flag.Int("workers", 0, "replication worker goroutines (0 = GOMAXPROCS)")
		traceOut  = flag.String("trace-out", "", "stream trace events (NDJSON, one event per line) to this file")
		pprof     = flag.Bool("pprof", false, "serve net/http/pprof profiles while the simulation runs")
		pprofAddr = flag.String("pprof-addr", "127.0.0.1:6060", "pprof listen address (with -pprof; port 0 picks a free port)")
	)
	flag.Parse()

	// A shared registry lets -pprof expose live /metrics across all
	// replications. It only feeds the HTTP view: per-run results and
	// stdout still come from each run's own accounting, so output stays
	// deterministic even though concurrent runs merge their counters
	// here.
	var liveReg *obs.Registry
	if *pprof {
		srv, err := obs.StartPprof(*pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof: %w", err)
		}
		defer srv.Close()
		liveReg = obs.NewRegistry()
		srv.Handle("/metrics", obs.PrometheusHandler(liveReg))
		// Live proc.* gauges (heap, goroutines, GC) ride the same registry
		// on a wall ticker. Like everything on the live view they never
		// touch stdout, so output determinism is unaffected.
		stopRes := obs.NewResourceSampler(liveReg).Start(2 * time.Second)
		defer stopRes()
		fmt.Printf("pprof listening on http://%s/debug/pprof/ (metrics at /metrics)\n", srv.Addr)
	}

	relay, err := node.ParseRelayPolicy(*policy)
	if err != nil {
		return err
	}
	var policySet node.PolicySet
	if *policies != "" {
		policySet, err = node.ParsePolicySet(*policies)
		if err != nil {
			return err
		}
	}

	base := analysis.PropagationConfig{
		Seed:                    *seed,
		NumReachable:            *nodes,
		Duration:                time.Duration(*hours * float64(time.Hour)),
		TxPerBlock:              *txs,
		RelayPolicy:             relay,
		Policies:                policySet,
		CompactBlocks:           *compact,
		ChurnDeparturesPer10Min: *churn,
		Metrics:                 liveReg,
	}

	traceClose := func() error { return nil }
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return fmt.Errorf("trace-out: %w", err)
		}
		w := obs.NewNDJSONWriter(f)
		// The sink is safe for concurrent runs; each line is one event,
		// but with -runs > 1 lines from different runs interleave in
		// completion order (split on the seed-dependent span IDs).
		base.TraceSink = w.Sink()
		var once sync.Once
		var closeErr error
		traceClose = func() error {
			// Close flushes and closes f; first sticky error wins. The
			// Once makes it safe to call from both the explicit
			// error-propagating site below and the deferred backstop.
			once.Do(func() {
				if err := w.Close(); err != nil {
					closeErr = fmt.Errorf("trace-out: %w", err)
				}
			})
			return closeErr
		}
		// Backstop: every return path — including a Ctrl-C that
		// cancels the runs mid-flight — flushes the buffered tail so
		// the file on disk is always complete, parseable NDJSON.
		defer traceClose() //nolint:errcheck // explicit call below reports it
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancel()

	if *runs < 1 {
		*runs = 1
	}
	start := time.Now()
	bufs := make([]bytes.Buffer, *runs)
	err = par.ForEach(ctx, *workers, *runs, func(ctx context.Context, i int) error {
		cfg := base
		cfg.Seed = base.Seed + int64(i)*7919
		res, err := analysis.RunPropagation(ctx, cfg)
		if err != nil {
			return fmt.Errorf("run %d (seed %d): %w", i, cfg.Seed, err)
		}
		if *runs > 1 {
			fmt.Fprintf(&bufs[i], "-- run %d (seed %d) --\n", i, cfg.Seed)
		}
		summarize(&bufs[i], res)
		return nil
	})
	if cerr := traceClose(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	// Wall time goes to stderr so stdout stays byte-identical across
	// same-seed invocations and worker counts.
	fmt.Fprintf(os.Stderr, "simulated %d nodes for %v of virtual time x %d run(s) (%v wall)\n",
		*nodes, base.Duration, *runs, time.Since(start).Round(time.Millisecond))
	for i := range bufs {
		if _, err := bufs[i].WriteTo(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

// summarize prints one run's headline statistics.
func summarize(w io.Writer, res *analysis.PropagationResult) {
	fmt.Fprintf(w, "blocks mined:            %d\n", res.BlocksMined)
	fmt.Fprintf(w, "mean outdegree:          %.2f\n", res.MeanOutdegree)
	if res.DialAttempts > 0 {
		fmt.Fprintf(w, "dial success rate:       %.1f%% (%d of %d)\n",
			100*float64(res.DialSuccesses)/float64(res.DialAttempts),
			res.DialSuccesses, res.DialAttempts)
	}
	if len(res.SyncSamples) > 0 {
		fmt.Fprintf(w, "true synchronization:    %.1f%%\n", 100*stats.Mean(res.SyncSamples))
	}
	if len(res.ObservedSyncSamples) > 0 {
		fmt.Fprintf(w, "observed synchronization: %.1f%% (Bitnodes-style monitor)\n",
			100*stats.Mean(res.ObservedSyncSamples))
	}
	blocks := analysis.SummarizeRelays(res.BlockRelays)
	txsRelay := analysis.SummarizeRelays(res.TxRelays)
	fmt.Fprintf(w, "block relay delay:       mean %.2fs max %.2fs (n=%d)\n",
		blocks.Mean, blocks.Max, blocks.Count)
	fmt.Fprintf(w, "tx relay delay:          mean %.2fs max %.2fs (n=%d)\n",
		txsRelay.Mean, txsRelay.Max, txsRelay.Count)
}
