// Command btcsim runs a message-level Bitcoin network simulation and
// reports propagation and synchronization statistics.
//
// Usage:
//
//	btcsim [-nodes 120] [-hours 4] [-churn 1.5] [-policy round-robin]
//	       [-txs 100] [-compact] [-seed 1] [-pprof] [-pprof-addr 127.0.0.1:6060]
//
// The relay policy is one of round-robin (Bitcoin Core's behaviour),
// broadcast (the theoretical ideal), or priority (the paper's §V
// refinement).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/analysis"
	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "btcsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		nodes     = flag.Int("nodes", 120, "reachable full nodes")
		hours     = flag.Float64("hours", 4, "measured virtual hours")
		churn     = flag.Float64("churn", 1.5, "node departures per 10 virtual minutes")
		policy    = flag.String("policy", "round-robin", "relay policy: round-robin | broadcast | priority")
		txs       = flag.Int("txs", 100, "background transactions per block interval")
		compact   = flag.Bool("compact", false, "use BIP-152 compact block relay")
		seed      = flag.Int64("seed", 1, "random seed")
		pprof     = flag.Bool("pprof", false, "serve net/http/pprof profiles while the simulation runs")
		pprofAddr = flag.String("pprof-addr", "127.0.0.1:6060", "pprof listen address (with -pprof; port 0 picks a free port)")
	)
	flag.Parse()

	if *pprof {
		srv, err := obs.StartPprof(*pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof: %w", err)
		}
		defer srv.Close()
		fmt.Printf("pprof listening on http://%s/debug/pprof/\n", srv.Addr)
	}

	var relay node.RelayPolicy
	switch *policy {
	case "round-robin":
		relay = node.RoundRobin
	case "broadcast":
		relay = node.Broadcast
	case "priority":
		relay = node.PriorityOutbound
	default:
		return fmt.Errorf("unknown relay policy %q", *policy)
	}

	cfg := analysis.PropagationConfig{
		Seed:                    *seed,
		NumReachable:            *nodes,
		Duration:                time.Duration(*hours * float64(time.Hour)),
		TxPerBlock:              *txs,
		RelayPolicy:             relay,
		CompactBlocks:           *compact,
		ChurnDeparturesPer10Min: *churn,
	}
	start := time.Now()
	res, err := analysis.RunPropagation(cfg)
	if err != nil {
		return err
	}

	fmt.Printf("simulated %d nodes for %v of virtual time (%v wall)\n",
		*nodes, cfg.Duration, time.Since(start).Round(time.Millisecond))
	fmt.Printf("blocks mined:            %d\n", res.BlocksMined)
	fmt.Printf("mean outdegree:          %.2f\n", res.MeanOutdegree)
	if res.DialAttempts > 0 {
		fmt.Printf("dial success rate:       %.1f%% (%d of %d)\n",
			100*float64(res.DialSuccesses)/float64(res.DialAttempts),
			res.DialSuccesses, res.DialAttempts)
	}
	if len(res.SyncSamples) > 0 {
		fmt.Printf("true synchronization:    %.1f%%\n", 100*stats.Mean(res.SyncSamples))
	}
	if len(res.ObservedSyncSamples) > 0 {
		fmt.Printf("observed synchronization: %.1f%% (Bitnodes-style monitor)\n",
			100*stats.Mean(res.ObservedSyncSamples))
	}
	blocks := analysis.SummarizeRelays(res.BlockRelays)
	txsRelay := analysis.SummarizeRelays(res.TxRelays)
	fmt.Printf("block relay delay:       mean %.2fs max %.2fs (n=%d)\n",
		blocks.Mean, blocks.Max, blocks.Count)
	fmt.Printf("tx relay delay:          mean %.2fs max %.2fs (n=%d)\n",
		txsRelay.Mean, txsRelay.Max, txsRelay.Count)
	return nil
}
