// Command reproduce regenerates the paper's figures and tables.
//
// Usage:
//
//	reproduce -list
//	reproduce -id fig1 [-seed 1] [-scale 0.3] [-netsize 120] [-quick] [-csv out/]
//	reproduce -all [-quick] [-csv out/] [-report report.html] [-workers 4]
//	          [-resources] [-flightrec crashdir/]
//	reproduce -render fig12
//
// Each experiment prints its measured metrics next to the paper's
// reported values; -csv additionally writes the underlying series
// (including <id>_timeseries.csv sim-time series sidecars), and
// -report renders every finished report into one self-contained HTML
// page with inline SVG sparklines of the key series.
// Experiments run concurrently on -workers goroutines (default
// GOMAXPROCS) with deterministic, worker-count-independent output;
// Ctrl-C cancels mid-simulation.
//
// A failing (or panicking) experiment does not stop the batch: the
// remaining experiments still run and render, each failure is
// summarised on stderr as "reproduce: FAILED <id>: <cause>", and the
// process exits non-zero.
//
// -resources adds one "  resources: ..." line per experiment (peak
// heap, allocations, GC, CPU) to stderr alongside the profile lines;
// stdout, CSVs, and the HTML report stay byte-identical at any -workers
// count. -flightrec names a directory that receives a crash flight
// record (tracer ring, resource watermarks, panic stack) whenever an
// experiment dies by panic or deadline.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/netgen"
	"repro/internal/node"
	"repro/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "reproduce:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		list    = flag.Bool("list", false, "list experiments")
		id      = flag.String("id", "", "experiment(s) to run, comma-separated (see -list)")
		all     = flag.Bool("all", false, "run every experiment")
		seed    = flag.Int64("seed", 1, "random seed")
		scale   = flag.Float64("scale", 0, "population scale (0 = default)")
		netSize = flag.Int("netsize", 0, "simulated live-node count (0 = default)")
		quick   = flag.Bool("quick", false, "reduced sizes for a fast smoke run")
		csvDir  = flag.String("csv", "", "also write series CSVs into this directory")
		render  = flag.String("render", "", "render an ASCII artifact (currently: fig12)")
		report   = flag.String("report", "", "write a self-contained HTML report (metrics + series sparklines) to this path")
		workers   = flag.Int("workers", 0, "experiment worker goroutines (0 = GOMAXPROCS)")
		policies  = flag.String("policies", "", "intervention policy set for fig_interv (e.g. \"tried-only-addr+horizon-17d\"; empty = full policy axis)")
		resources = flag.Bool("resources", false, "print per-experiment resource lines (peak heap, allocs, GC, CPU) to stderr")
		flightDir = flag.String("flightrec", "", "write crash flight records (flightrec-<id>.json) into this directory on panic/deadline")
	)
	flag.Parse()

	// Canonicalize -policies up front so a typo fails before any
	// experiment runs and the Options carry the stable encoding.
	if *policies != "" {
		set, err := node.ParsePolicySet(*policies)
		if err != nil {
			return err
		}
		*policies = set.String()
	}

	opts := core.Options{
		Seed:     *seed,
		Scale:    *scale,
		NetSize:  *netSize,
		Quick:    *quick,
		Workers:  *workers,
		Policies: *policies,
	}

	// Ctrl-C cancels the context; the simulations poll it and stop
	// mid-run, so a second signal is only needed if teardown hangs.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancel()

	// KeepGoing: one broken experiment must not cost the rest of the
	// batch. Failures are summarised per experiment on stderr after
	// everything has run, and the process still exits non-zero.
	runner := core.Runner{
		Workers:   *workers,
		Options:   opts,
		CSVDir:    *csvDir,
		Profiles:  os.Stderr,
		KeepGoing: true,
	}
	// Resource lines share the Profiles channel (stderr): wall-clock
	// derived, so they must stay off stdout, the CSVs, and the HTML
	// report, which are all byte-identical across -workers counts.
	if *resources {
		runner.Resources = obs.NewResourceSampler(nil)
	}
	if *flightDir != "" {
		fr, err := obs.OpenFlightRecorder(*flightDir)
		if err != nil {
			return err
		}
		runner.FlightRecorder = fr
	}
	// The HTML report collects finished reports from the Runner's
	// ordered merge loop, so the page is deterministic at any -workers.
	var collected []*core.Report
	if *report != "" {
		runner.Collect = func(r *core.Report) { collected = append(collected, r) }
	}
	writeReport := func() error {
		if *report == "" {
			return nil
		}
		if err := core.WriteHTMLReport(*report, collected); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote HTML report to %s\n", *report)
		return nil
	}

	switch {
	case *list:
		for _, e := range core.Experiments() {
			fmt.Printf("%-10s %-12s %s\n", e.ID, e.Section, e.Title)
		}
		return nil

	case *render != "":
		return renderArtifact(ctx, *render, opts)

	case *all:
		start := time.Now()
		if err := runner.Run(ctx, core.Experiments(), os.Stdout); err != nil {
			return finishBatch(err, writeReport)
		}
		// Wall time is nondeterministic; keep stdout byte-identical
		// across worker counts.
		fmt.Fprintf(os.Stderr, "all experiments done in %v\n",
			time.Since(start).Round(time.Second))
		return writeReport()

	case *id != "":
		var exps []core.Experiment
		for _, one := range strings.Split(*id, ",") {
			one = strings.TrimSpace(one)
			e, ok := core.ByID(one)
			if !ok {
				return fmt.Errorf("unknown experiment %q (use -list)", one)
			}
			exps = append(exps, e)
		}
		if err := runner.Run(ctx, exps, os.Stdout); err != nil {
			return finishBatch(err, writeReport)
		}
		return writeReport()

	default:
		flag.Usage()
		return fmt.Errorf("one of -list, -id, -all, or -render is required")
	}
}

// finishBatch handles a Runner failure: for a KeepGoing batch it prints
// one stderr line per failed experiment, still writes the HTML report
// (the healthy experiments' results are real and already on stdout),
// and returns a compact error so main exits non-zero. Any other error
// (cancellation, I/O) passes through untouched.
func finishBatch(err error, writeReport func() error) error {
	var batch *core.BatchError
	if !errors.As(err, &batch) {
		return err
	}
	for _, f := range batch.Failures {
		fmt.Fprintf(os.Stderr, "reproduce: FAILED %s: %v\n", f.ID, firstLine(f.Err.Error()))
	}
	if werr := writeReport(); werr != nil {
		fmt.Fprintln(os.Stderr, "reproduce:", werr)
	}
	return fmt.Errorf("%d of %d experiments failed", len(batch.Failures), batch.Total)
}

// firstLine clips a (possibly multi-line panic) message for the summary.
func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// renderArtifact draws figure artifacts that are pictures rather than
// series.
func renderArtifact(ctx context.Context, id string, opts core.Options) error {
	switch id {
	case "fig12":
		scale := opts.Scale
		if scale == 0 {
			scale = 0.05
		}
		res, err := analysis.RunChurnFigs(ctx, analysis.ChurnFigsConfig{
			Params: netgen.DefaultParams(opts.Seed, scale),
		})
		if err != nil {
			return err
		}
		fmt.Println(res.Matrix.Render(48, 100))
		fmt.Printf("persistent=%d of %d, mean lifetime %.1f days\n",
			res.PersistentCount, res.UniqueAddresses,
			res.MeanLifetime.Hours()/24)
		return nil
	default:
		return fmt.Errorf("no renderer for %q (try fig12)", id)
	}
}
